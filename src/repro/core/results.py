"""Result-set decryption: step 4 of CryptDB's query processing.

The DBMS returns encrypted rows; the proxy walks the rewrite plan's output
specifications and decrypts the result **column-at-a-time** through the
encryptor's batch API: for each output spec the ciphertext column (plus the
per-row IV column the rewriter appended when the Eq onion was still at RND)
is sliced out of the server rows, decrypted in one call -- deduplicating
repeated ciphertexts through the cache subsystem -- and the plaintext
columns are zipped back into rows under the application's original column
names.  AVG is recombined from its SUM and COUNT components and any
in-proxy ordering (§3.5.1) is applied at the end.
"""

from __future__ import annotations

from typing import Any

from repro.core.encryptor import Encryptor
from repro.core.rewriter import OutputSpec, RewritePlan
from repro.sql.executor import ResultSet


def decrypt_results(
    plan: RewritePlan, server_result: ResultSet, encryptor: Encryptor
) -> ResultSet:
    """Decrypt a server result set according to the rewrite plan."""
    if not plan.output:
        return ResultSet([], [], server_result.rowcount)

    columns = [spec.name for spec in plan.output]
    server_rows = server_result.rows
    decrypted_columns = [
        _decrypt_column(spec, server_rows, encryptor) for spec in plan.output
    ]
    rows = [tuple(col[i] for col in decrypted_columns) for i in range(len(server_rows))]

    if plan.proxy_order:
        rows = _proxy_sort(rows, plan.proxy_order)

    return ResultSet(columns, rows, len(rows))


def _decrypt_column(
    spec: OutputSpec, server_rows: list[tuple], encryptor: Encryptor
) -> list[Any]:
    """Decrypt one output column of the whole result set."""
    values = [row[spec.source_index] for row in server_rows]
    if spec.kind == "plain":
        return values
    if spec.kind == "column":
        ivs = (
            [row[spec.iv_index] for row in server_rows]
            if spec.iv_index is not None
            else None
        )
        return encryptor.decrypt_column(spec.column, spec.onion, spec.level, values, ivs)
    if spec.kind == "hom_sum":
        return encryptor.decrypt_hom_sums(spec.column, values)
    if spec.kind == "avg":
        if spec.extra_index is None:
            # Packed column: the divisor is the slot's count subfield, read
            # out of the same decrypted aggregate (no COUNT item shipped).
            return encryptor.decrypt_hom_avgs(spec.column, values)
        totals = encryptor.decrypt_hom_sums(spec.column, values)
        counts = [row[spec.extra_index] for row in server_rows]
        return [
            None if not count else total / count
            for total, count in zip(totals, counts)
        ]
    if spec.kind == "ope_agg":
        return encryptor.decrypt_column(spec.column, spec.onion, spec.level, values, None)
    raise ValueError(f"unknown output spec kind {spec.kind}")


class _Descending:
    """Wraps one column's sort key so tuple comparison runs in reverse.

    Python's sort has no per-column ``reverse``; negation only works for
    numbers, while OPE integers, DET bytes and plaintext strings all flow
    through these keys.  Inverting ``<`` is type-agnostic.
    """

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.key == self.key


def column_sort_key(value, ascending: bool):
    """One column's contribution to an ORDER BY sort key.

    NULL placement must match what the DBMS would have produced had the
    sort run server-side (NULLS FIRST ascending, NULLS LAST descending) --
    the conformance harness compares the two modes directly.  The non-NULL
    flag leads the key: ascending puts the False (NULL) group first, and
    the descending wrapper flips the whole pair, which lands NULLs last.
    Shared with the sharded backend's k-way merge so per-shard ORDER BY
    streams interleave with exactly the single-backend NULL semantics.
    """
    key = (value is not None, value)
    return key if ascending else _Descending(key)


def row_sort_key(row: tuple, order: list[tuple[int, bool]]) -> tuple:
    """The full composite ORDER BY key for one row."""
    return tuple(column_sort_key(row[index], ascending) for index, ascending in order)


def _proxy_sort(rows: list[tuple], order: list[tuple[int, bool]]) -> list[tuple]:
    """In-proxy ORDER BY (§3.5.1), applied after decryption."""
    # sorted() is stable, so one composite-key pass is equivalent to the
    # classic least-significant-first cascade of stable sorts.
    return sorted(rows, key=lambda row: row_sort_key(row, order))

"""The unified ciphertext cache subsystem (§3.5.2).

The proxy spends most of its CPU time in deterministic crypto (DET, the
JOIN-ADJ elliptic-curve hash, OPE's lazy function sampling, the SEARCH word
cores) and in Paillier's ``r^n mod n^2`` randomness.  Because DET/OPE/SEARCH
ciphertexts are pure functions of (column key, plaintext), they can be
memoised; HOM randomness can be pre-computed while the proxy is idle.  The
paper sizes the OPE cache at about 3 MB for 30,000 values and reports the
proxy* ablation (Figure 12) with all of this switched off.

:class:`CryptoCache` is the one place all of those caches live:

* the per-column **Eq memos** map plaintext bytes to their JOIN/DET-layer
  ciphertexts (and back), collapsing the expensive deterministic part of the
  Eq onion to one dictionary lookup for repeated values.  Encrypt memos are
  invalidated when a JOIN-ADJ re-keying changes the ciphertexts a column
  stores; decrypt memos are pure functions of the ciphertext bytes and stay
  valid forever;
* the OPE and SEARCH scheme objects created by the encryptor are registered
  here so their cache sizes and hit/miss counters aggregate into one report;
* the Paillier randomness pool is filled through :meth:`precompute_hom` and
  its hit/miss counters are reported alongside.

**Byte budget.**  ``estimated_bytes`` is a real measurement: every cache
unit (one per-column memo, one scheme's memo containers, the HOM pool) is
walked with ``sys.getsizeof`` and re-measured only when its entry count has
changed since the last report.  When the proxy is constructed with a
``cache_budget_bytes`` limit, :meth:`enforce_budget` -- called after every
statement -- evicts whole units in least-recently-used order until the
measured footprint fits, shedding the HOM randomness pool last (dropping
pre-computed factors costs only future encryption latency, never a cached
ciphertext).  ``evictions``/``evicted_bytes`` count what was shed.

``proxy.stats`` exposes :meth:`statistics`, and ``proxy.stats.reset()``
clears the counters (never the cached entries themselves).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Optional

from repro.crypto.paillier import PaillierKeyPair


def deep_size(obj, _seen: set | None = None) -> int:
    """Recursive ``sys.getsizeof`` over the container shapes caches hold.

    Walks dicts, lists, tuples, sets and their elements, counting each
    distinct object once (memo values may share key bytes).  This is the
    same walk the accuracy test performs independently over the raw cache
    containers, so ``estimated_bytes`` is measured, not modelled.
    """
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_size(key, _seen)
            size += deep_size(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_size(item, _seen)
    return size


@dataclass
class CacheStatistics:
    """Aggregated cache counters reported by the proxy and the benchmarks.

    ``worker_det_hits``/``worker_det_misses`` are the per-worker Eq memo
    counters of the crypto worker pool, merged in as deltas as each parallel
    job completes; ``parallel_jobs`` counts completed pool jobs and
    ``hom_pool_async_refills`` counts background Paillier randomness batches
    that landed in the pool (the asynchronous refill path).
    ``estimated_bytes`` is the measured footprint of all cached entries,
    ``budget_bytes`` the configured ceiling (0 = unlimited), and
    ``evictions``/``evicted_bytes`` what budget enforcement has shed.
    """

    det_entries: int = 0
    det_hits: int = 0
    det_misses: int = 0
    ope_entries: int = 0
    ope_hits: int = 0
    ope_misses: int = 0
    search_entries: int = 0
    search_hits: int = 0
    search_misses: int = 0
    hom_pool_remaining: int = 0
    hom_pool_hits: int = 0
    hom_pool_misses: int = 0
    estimated_bytes: int = 0
    budget_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    worker_det_hits: int = 0
    worker_det_misses: int = 0
    parallel_jobs: int = 0
    hom_pool_async_refills: int = 0
    #: Worker-pool health (filled by ProxyStatistics.cache_stats() from the
    #: live pool): lifetime restarts/transport failures/circuit-breaker
    #: openings, and whether the breaker is open right now (serial fallback).
    pool_restarts: int = 0
    pool_failures: int = 0
    pool_circuit_opens: int = 0
    pool_circuit_open: int = 0

    @property
    def det_hits_total(self) -> int:
        """Parent-memo and worker-memo hits combined."""
        return self.det_hits + self.worker_det_hits

    @property
    def det_misses_total(self) -> int:
        return self.det_misses + self.worker_det_misses

    # Legacy field names kept for callers of the pre-unification cache.
    @property
    def ope_cached_values(self) -> int:
        return self.ope_entries

    @property
    def hom_precomputed_remaining(self) -> int:
        return self.hom_pool_remaining

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


class CryptoCache:
    """All §3.5.2 ciphertext caches and pre-computation pools of one proxy."""

    def __init__(
        self,
        paillier: PaillierKeyPair,
        enabled: bool = True,
        budget_bytes: Optional[int] = None,
    ):
        self.paillier = paillier
        self.enabled = enabled
        self.budget_bytes = budget_bytes
        self._ope_schemes: list = []
        self._search_schemes: list = []
        self._eq_encrypt_memos: dict[tuple[str, str], dict] = {}
        self._eq_decrypt_memos: dict[tuple[str, str], dict] = {}
        self.det_hits = 0
        self.det_misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        # Budget bookkeeping: ``_lru`` orders evictable units (one key per
        # memo dict / scheme) from coldest to hottest; ``_unit_sizes`` maps
        # each unit to its (entry count, measured bytes) at last measurement
        # so an unchanged unit is never re-walked; ``_scheme_activity``
        # snapshots each scheme's hit+miss counter so use between two
        # ``enforce_budget`` calls refreshes its LRU position.
        self._lru: OrderedDict[tuple, None] = OrderedDict()
        self._unit_sizes: dict[tuple, tuple[int, int]] = {}
        self._scheme_activity: dict[tuple, int] = {}
        # Crypto-worker-pool counters, accumulated as per-job deltas (never
        # polled from workers, so pool restarts cannot double-count).  The
        # lock serialises merges from the main thread (scatter) and the
        # pool's result-handler thread (async refills).
        self._worker_counter_lock = threading.Lock()
        self.worker_det_hits = 0
        self.worker_det_misses = 0
        self.parallel_jobs = 0
        self.hom_pool_async_refills = 0

    # -- scheme registration (done by the encryptor as it creates them) ----
    def register_ope(self, scheme) -> None:
        self._lru[("ope", len(self._ope_schemes))] = None
        self._ope_schemes.append(scheme)

    def register_search(self, scheme) -> None:
        self._lru[("search", len(self._search_schemes))] = None
        self._search_schemes.append(scheme)

    # -- Eq-onion memos ----------------------------------------------------
    def eq_encrypt_memo(self, table: str, column: str) -> dict | None:
        """Plaintext-bytes -> (join_ct, det_ct) memo, or None when disabled."""
        if not self.enabled:
            return None
        key = ("eq_enc", table, column)
        memo = self._eq_encrypt_memos.get((table, column))
        if memo is None:
            memo = self._eq_encrypt_memos[(table, column)] = {}
        self._lru[key] = None
        self._lru.move_to_end(key)
        return memo

    def eq_decrypt_memo(self, table: str, column: str) -> dict | None:
        """Ciphertext -> decoded-value memo, or None when disabled."""
        if not self.enabled:
            return None
        key = ("eq_dec", table, column)
        memo = self._eq_decrypt_memos.get((table, column))
        if memo is None:
            memo = self._eq_decrypt_memos[(table, column)] = {}
        self._lru[key] = None
        self._lru.move_to_end(key)
        return memo

    def invalidate_eq(self, table: str | None = None, column: str | None = None) -> None:
        """Drop Eq encrypt memos after a JOIN-ADJ re-keying.

        Re-keying rescales the JOIN-ADJ component baked into every stored
        Eq ciphertext, so memoised encryptions no longer match the server's
        data.  Decrypt memos are keyed on the ciphertext bytes themselves
        and remain correct.  With no arguments every column is invalidated
        (used after a transaction rollback rewinds join keys wholesale).
        """
        if table is None:
            self._eq_encrypt_memos.clear()
            for key in [k for k in self._lru if k[0] == "eq_enc"]:
                self._lru.pop(key, None)
                self._unit_sizes.pop(key, None)
            return
        self._eq_encrypt_memos.pop((table, column), None)
        self._lru.pop(("eq_enc", table, column), None)
        self._unit_sizes.pop(("eq_enc", table, column), None)

    # -- HOM pre-computation (§3.5.2) --------------------------------------
    def precompute_hom(self, count: int) -> None:
        """Pre-compute Paillier randomness while the proxy is idle."""
        if self.enabled:
            self.paillier.precompute_randomness(count)

    # -- crypto-worker-pool counter merging --------------------------------
    def absorb_worker_counters(self, delta: dict) -> None:
        """Merge one parallel job's counter delta into the aggregate.

        Called by the worker pool as each job's results are spliced, and --
        for async refill jobs -- from the pool's result-handler thread, so
        the merge takes the counter lock (``+=`` alone is not atomic).
        """
        with self._worker_counter_lock:
            self.worker_det_hits += delta.get("det_hits", 0)
            self.worker_det_misses += delta.get("det_misses", 0)
            self.parallel_jobs += delta.get("jobs", 0)

    def note_async_refill(self) -> None:
        """Count one background HOM refill batch that landed in the pool."""
        with self._worker_counter_lock:
            self.hom_pool_async_refills += 1

    # -- byte accounting and budget enforcement ----------------------------
    def _unit_containers(self, key: tuple) -> tuple[int, tuple]:
        """(entry count, container objects) of one evictable cache unit."""
        kind = key[0]
        if kind == "eq_enc":
            memo = self._eq_encrypt_memos.get(key[1:], {})
            return len(memo), (memo,)
        if kind == "eq_dec":
            memo = self._eq_decrypt_memos.get(key[1:], {})
            return len(memo), (memo,)
        if kind == "ope":
            scheme = self._ope_schemes[key[1]]
        else:
            scheme = self._search_schemes[key[1]]
        return scheme.cache_size, tuple(scheme.cache_objects())

    def _unit_bytes(self, key: tuple) -> int:
        """Measured bytes of one unit, re-walking only when it grew/shrank."""
        count, containers = self._unit_containers(key)
        cached = self._unit_sizes.get(key)
        if cached is not None and cached[0] == count:
            return cached[1]
        seen: set = set()
        size = sum(deep_size(obj, seen) for obj in containers)
        self._unit_sizes[key] = (count, size)
        return size

    def _estimated_bytes(self) -> int:
        total = sum(self._unit_bytes(key) for key in self._lru)
        return total + self.paillier.randomness_pool_bytes

    def _touch_active_schemes(self) -> None:
        """Refresh LRU position of schemes used since the last enforcement.

        The encryptor talks to OPE/SEARCH scheme objects directly, so the
        cache cannot observe their accesses the way it observes Eq memo
        lookups; their hit+miss counters stand in as an activity signal.
        """
        for kind, schemes in (("ope", self._ope_schemes), ("search", self._search_schemes)):
            for index, scheme in enumerate(schemes):
                key = (kind, index)
                activity = scheme.cache_hits + scheme.cache_misses
                if self._scheme_activity.get(key) != activity:
                    self._scheme_activity[key] = activity
                    if key in self._lru:
                        self._lru.move_to_end(key)

    def _evict_unit(self, key: tuple) -> int:
        """Drop one unit's entries; returns the bytes reclaimed."""
        size = self._unit_bytes(key)
        kind = key[0]
        if kind == "eq_enc":
            self._eq_encrypt_memos.pop(key[1:], None)
        elif kind == "eq_dec":
            self._eq_decrypt_memos.pop(key[1:], None)
        elif kind == "ope":
            self._ope_schemes[key[1]].clear_cache()
        else:
            self._search_schemes[key[1]].clear_cache()
        if kind in ("ope", "search"):
            # Schemes stay registered (the encryptor holds them); an empty
            # unit re-enters LRU rotation as it refills.
            self._unit_sizes.pop(key, None)
            self._lru.move_to_end(key)
        else:
            self._lru.pop(key, None)
            self._unit_sizes.pop(key, None)
        self.evictions += 1
        self.evicted_bytes += size
        return size

    def enforce_budget(self) -> None:
        """Evict least-recently-used units until the footprint fits.

        Memos go first, coldest unit first; the HOM randomness pool is
        trimmed last because shedding pre-computed factors never discards a
        cached ciphertext -- the next INSERTs just pay ``r^n`` inline again.
        """
        if self.budget_bytes is None:
            return
        self._touch_active_schemes()
        total = self._estimated_bytes()
        if total <= self.budget_bytes:
            return
        for key in list(self._lru):
            if total <= self.budget_bytes:
                return
            _, containers = self._unit_containers(key)
            if not any(len(c) for c in containers):
                continue
            total -= self._evict_unit(key)
        excess = total - self.budget_bytes
        count = self.paillier.randomness_pool_size
        if excess > 0 and count:
            per_factor = max(1, (self.paillier.randomness_pool_bytes // count))
            drop = min(count, -(-excess // per_factor))
            dropped = self.paillier.trim_randomness_pool(count - drop)
            if dropped:
                self.evictions += 1
                self.evicted_bytes += dropped * per_factor

    # -- reporting ---------------------------------------------------------
    def statistics(self) -> CacheStatistics:
        det_entries = sum(len(m) for m in self._eq_encrypt_memos.values())
        det_entries += sum(len(m) for m in self._eq_decrypt_memos.values())
        ope_entries = sum(s.cache_size for s in self._ope_schemes)
        search_entries = sum(s.cache_size for s in self._search_schemes)
        hom_remaining = self.paillier.randomness_pool_size
        return CacheStatistics(
            det_entries=det_entries,
            det_hits=self.det_hits,
            det_misses=self.det_misses,
            ope_entries=ope_entries,
            ope_hits=sum(s.cache_hits for s in self._ope_schemes),
            ope_misses=sum(s.cache_misses for s in self._ope_schemes),
            search_entries=search_entries,
            search_hits=sum(s.cache_hits for s in self._search_schemes),
            search_misses=sum(s.cache_misses for s in self._search_schemes),
            hom_pool_remaining=hom_remaining,
            hom_pool_hits=self.paillier.pool_hits,
            hom_pool_misses=self.paillier.pool_misses,
            worker_det_hits=self.worker_det_hits,
            worker_det_misses=self.worker_det_misses,
            parallel_jobs=self.parallel_jobs,
            hom_pool_async_refills=self.hom_pool_async_refills,
            estimated_bytes=self._estimated_bytes(),
            budget_bytes=self.budget_bytes or 0,
            evictions=self.evictions,
            evicted_bytes=self.evicted_bytes,
        )

    def reset_counters(self) -> None:
        """Zero every hit/miss counter (entries and pools are kept).

        The per-worker counters accumulated from the crypto pool are part of
        the aggregate and reset with it; a pool restart afterwards starts
        from zero again because only per-job deltas are ever absorbed.
        Eviction counters are lifetime totals and reset with the rest.
        """
        self.det_hits = 0
        self.det_misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        with self._worker_counter_lock:
            self.worker_det_hits = 0
            self.worker_det_misses = 0
            self.parallel_jobs = 0
            self.hom_pool_async_refills = 0
        for scheme in self._ope_schemes:
            scheme.reset_counters()
        for scheme in self._search_schemes:
            scheme.reset_counters()
        self.paillier.reset_counters()

    def clear(self) -> None:
        """Drop every cached entry (counters are kept; use reset_counters)."""
        self._eq_encrypt_memos.clear()
        self._eq_decrypt_memos.clear()
        self._unit_sizes.clear()
        for key in [k for k in self._lru if k[0] in ("eq_enc", "eq_dec")]:
            del self._lru[key]
        for scheme in self._ope_schemes:
            scheme.clear_cache()
        for scheme in self._search_schemes:
            scheme.clear_cache()

"""The unified ciphertext cache subsystem (§3.5.2).

The proxy spends most of its CPU time in deterministic crypto (DET, the
JOIN-ADJ elliptic-curve hash, OPE's lazy function sampling, the SEARCH word
cores) and in Paillier's ``r^n mod n^2`` randomness.  Because DET/OPE/SEARCH
ciphertexts are pure functions of (column key, plaintext), they can be
memoised; HOM randomness can be pre-computed while the proxy is idle.  The
paper sizes the OPE cache at about 3 MB for 30,000 values and reports the
proxy* ablation (Figure 12) with all of this switched off.

:class:`CryptoCache` is the one place all of those caches live:

* the per-column **Eq memos** map plaintext bytes to their JOIN/DET-layer
  ciphertexts (and back), collapsing the expensive deterministic part of the
  Eq onion to one dictionary lookup for repeated values.  Encrypt memos are
  invalidated when a JOIN-ADJ re-keying changes the ciphertexts a column
  stores; decrypt memos are pure functions of the ciphertext bytes and stay
  valid forever;
* the OPE and SEARCH scheme objects created by the encryptor are registered
  here so their cache sizes and hit/miss counters aggregate into one report;
* the Paillier randomness pool is filled through :meth:`precompute_hom` and
  its hit/miss counters are reported alongside.

``proxy.stats`` exposes :meth:`statistics`, and ``proxy.stats.reset()``
clears the counters (never the cached entries themselves).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

from repro.crypto.paillier import PaillierKeyPair


@dataclass
class CacheStatistics:
    """Aggregated cache counters reported by the proxy and the benchmarks.

    ``worker_det_hits``/``worker_det_misses`` are the per-worker Eq memo
    counters of the crypto worker pool, merged in as deltas as each parallel
    job completes; ``parallel_jobs`` counts completed pool jobs and
    ``hom_pool_async_refills`` counts background Paillier randomness batches
    that landed in the pool (the asynchronous refill path).
    """

    det_entries: int = 0
    det_hits: int = 0
    det_misses: int = 0
    ope_entries: int = 0
    ope_hits: int = 0
    ope_misses: int = 0
    search_entries: int = 0
    search_hits: int = 0
    search_misses: int = 0
    hom_pool_remaining: int = 0
    hom_pool_hits: int = 0
    hom_pool_misses: int = 0
    estimated_bytes: int = 0
    worker_det_hits: int = 0
    worker_det_misses: int = 0
    parallel_jobs: int = 0
    hom_pool_async_refills: int = 0

    @property
    def det_hits_total(self) -> int:
        """Parent-memo and worker-memo hits combined."""
        return self.det_hits + self.worker_det_hits

    @property
    def det_misses_total(self) -> int:
        return self.det_misses + self.worker_det_misses

    # Legacy field names kept for callers of the pre-unification cache.
    @property
    def ope_cached_values(self) -> int:
        return self.ope_entries

    @property
    def hom_precomputed_remaining(self) -> int:
        return self.hom_pool_remaining

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


class CryptoCache:
    """All §3.5.2 ciphertext caches and pre-computation pools of one proxy."""

    #: rough per-entry sizes used for the memory estimate (§8.4.1 reports
    #: ~3 MB for 30,000 OPE entries and ~10 MB for 30,000 HOM factors).
    DET_ENTRY_BYTES = 160
    OPE_ENTRY_BYTES = 100
    SEARCH_ENTRY_BYTES = 48
    HOM_ENTRY_BYTES = 340

    def __init__(self, paillier: PaillierKeyPair, enabled: bool = True):
        self.paillier = paillier
        self.enabled = enabled
        self._ope_schemes: list = []
        self._search_schemes: list = []
        self._eq_encrypt_memos: dict[tuple[str, str], dict] = {}
        self._eq_decrypt_memos: dict[tuple[str, str], dict] = {}
        self.det_hits = 0
        self.det_misses = 0
        # Crypto-worker-pool counters, accumulated as per-job deltas (never
        # polled from workers, so pool restarts cannot double-count).  The
        # lock serialises merges from the main thread (scatter) and the
        # pool's result-handler thread (async refills).
        self._worker_counter_lock = threading.Lock()
        self.worker_det_hits = 0
        self.worker_det_misses = 0
        self.parallel_jobs = 0
        self.hom_pool_async_refills = 0

    # -- scheme registration (done by the encryptor as it creates them) ----
    def register_ope(self, scheme) -> None:
        self._ope_schemes.append(scheme)

    def register_search(self, scheme) -> None:
        self._search_schemes.append(scheme)

    # -- Eq-onion memos ----------------------------------------------------
    def eq_encrypt_memo(self, table: str, column: str) -> dict | None:
        """Plaintext-bytes -> (join_ct, det_ct) memo, or None when disabled."""
        if not self.enabled:
            return None
        memo = self._eq_encrypt_memos.get((table, column))
        if memo is None:
            memo = self._eq_encrypt_memos[(table, column)] = {}
        return memo

    def eq_decrypt_memo(self, table: str, column: str) -> dict | None:
        """Ciphertext -> decoded-value memo, or None when disabled."""
        if not self.enabled:
            return None
        memo = self._eq_decrypt_memos.get((table, column))
        if memo is None:
            memo = self._eq_decrypt_memos[(table, column)] = {}
        return memo

    def invalidate_eq(self, table: str | None = None, column: str | None = None) -> None:
        """Drop Eq encrypt memos after a JOIN-ADJ re-keying.

        Re-keying rescales the JOIN-ADJ component baked into every stored
        Eq ciphertext, so memoised encryptions no longer match the server's
        data.  Decrypt memos are keyed on the ciphertext bytes themselves
        and remain correct.  With no arguments every column is invalidated
        (used after a transaction rollback rewinds join keys wholesale).
        """
        if table is None:
            self._eq_encrypt_memos.clear()
            return
        self._eq_encrypt_memos.pop((table, column), None)

    # -- HOM pre-computation (§3.5.2) --------------------------------------
    def precompute_hom(self, count: int) -> None:
        """Pre-compute Paillier randomness while the proxy is idle."""
        if self.enabled:
            self.paillier.precompute_randomness(count)

    # -- crypto-worker-pool counter merging --------------------------------
    def absorb_worker_counters(self, delta: dict) -> None:
        """Merge one parallel job's counter delta into the aggregate.

        Called by the worker pool as each job's results are spliced, and --
        for async refill jobs -- from the pool's result-handler thread, so
        the merge takes the counter lock (``+=`` alone is not atomic).
        """
        with self._worker_counter_lock:
            self.worker_det_hits += delta.get("det_hits", 0)
            self.worker_det_misses += delta.get("det_misses", 0)
            self.parallel_jobs += delta.get("jobs", 0)

    def note_async_refill(self) -> None:
        """Count one background HOM refill batch that landed in the pool."""
        with self._worker_counter_lock:
            self.hom_pool_async_refills += 1

    # -- reporting ---------------------------------------------------------
    def statistics(self) -> CacheStatistics:
        det_entries = sum(len(m) for m in self._eq_encrypt_memos.values())
        det_entries += sum(len(m) for m in self._eq_decrypt_memos.values())
        ope_entries = sum(s.cache_size for s in self._ope_schemes)
        search_entries = sum(s.cache_size for s in self._search_schemes)
        hom_remaining = self.paillier.randomness_pool_size
        return CacheStatistics(
            det_entries=det_entries,
            det_hits=self.det_hits,
            det_misses=self.det_misses,
            ope_entries=ope_entries,
            ope_hits=sum(s.cache_hits for s in self._ope_schemes),
            ope_misses=sum(s.cache_misses for s in self._ope_schemes),
            search_entries=search_entries,
            search_hits=sum(s.cache_hits for s in self._search_schemes),
            search_misses=sum(s.cache_misses for s in self._search_schemes),
            hom_pool_remaining=hom_remaining,
            hom_pool_hits=self.paillier.pool_hits,
            hom_pool_misses=self.paillier.pool_misses,
            worker_det_hits=self.worker_det_hits,
            worker_det_misses=self.worker_det_misses,
            parallel_jobs=self.parallel_jobs,
            hom_pool_async_refills=self.hom_pool_async_refills,
            estimated_bytes=(
                det_entries * self.DET_ENTRY_BYTES
                + ope_entries * self.OPE_ENTRY_BYTES
                + search_entries * self.SEARCH_ENTRY_BYTES
                + hom_remaining * self.HOM_ENTRY_BYTES
            ),
        )

    def reset_counters(self) -> None:
        """Zero every hit/miss counter (entries and pools are kept).

        The per-worker counters accumulated from the crypto pool are part of
        the aggregate and reset with it; a pool restart afterwards starts
        from zero again because only per-job deltas are ever absorbed.
        """
        self.det_hits = 0
        self.det_misses = 0
        with self._worker_counter_lock:
            self.worker_det_hits = 0
            self.worker_det_misses = 0
            self.parallel_jobs = 0
            self.hom_pool_async_refills = 0
        for scheme in self._ope_schemes:
            scheme.reset_counters()
        for scheme in self._search_schemes:
            scheme.reset_counters()
        self.paillier.reset_counters()

    def clear(self) -> None:
        """Drop every cached entry (counters are kept; use reset_counters)."""
        self._eq_encrypt_memos.clear()
        self._eq_decrypt_memos.clear()
        for scheme in self._ope_schemes:
            scheme.clear_cache()
        for scheme in self._search_schemes:
            scheme.clear_cache()

"""Ciphertext pre-computing and caching (§3.5.2).

The proxy spends most of its CPU time in OPE and HOM encryption.  Two
optimisations hide that cost:

* OPE ciphertexts of frequently used constants are cached (the OPE objects
  already memoise plaintext/ciphertext pairs; this module tracks and reports
  the cache the way the paper sizes it -- about 3 MB for 30,000 values).
* HOM (Paillier) encryption is probabilistic so ciphertexts cannot be
  reused, but the expensive ``r^n mod n^2`` randomness can be pre-computed
  while the proxy is idle, taking HOM encryption off the critical path.

``CiphertextCache`` bundles both so the Figure 12 "Proxy" vs "Proxy*"
ablation can switch them on and off with one flag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.paillier import PaillierKeyPair


@dataclass
class CacheStatistics:
    """Counters reported by the benchmarks."""

    ope_cached_values: int = 0
    hom_precomputed_remaining: int = 0
    estimated_bytes: int = 0


class CiphertextCache:
    """Controls the §3.5.2 pre-computation/caching optimisations."""

    #: rough per-entry sizes used for the memory estimate (§8.4.1 reports
    #: ~3 MB for 30,000 OPE entries and ~10 MB for 30,000 HOM factors).
    OPE_ENTRY_BYTES = 100
    HOM_ENTRY_BYTES = 340

    def __init__(self, paillier: PaillierKeyPair, enabled: bool = True):
        self.paillier = paillier
        self.enabled = enabled
        self._ope_schemes = []

    def track_ope(self, ope_scheme) -> None:
        """Register an OPE object so its cache size shows up in statistics."""
        self._ope_schemes.append(ope_scheme)

    def precompute_hom(self, count: int) -> None:
        """Pre-compute Paillier randomness while the proxy is idle."""
        if self.enabled:
            self.paillier.precompute_randomness(count)

    def statistics(self) -> CacheStatistics:
        ope_values = sum(s.cache_size for s in self._ope_schemes)
        hom_remaining = self.paillier.randomness_pool_size
        return CacheStatistics(
            ope_cached_values=ope_values,
            hom_precomputed_remaining=hom_remaining,
            estimated_bytes=(
                ope_values * self.OPE_ENTRY_BYTES + hom_remaining * self.HOM_ENTRY_BYTES
            ),
        )

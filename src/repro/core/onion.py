"""Onions of encryption: layers, the computations they allow, security levels.

Figure 2 of the paper defines four onions:

* **Eq** -- ``RND(DET(JOIN(value)))`` -- equality selection, equality join,
  GROUP BY, COUNT, DISTINCT.
* **Ord** -- ``RND(OPE(value))`` -- order comparison, ORDER BY, MIN/MAX,
  range queries (the OPE-JOIN sub-layer is modelled as a shared-key flag,
  see DESIGN.md).
* **Add** -- ``HOM(value)`` -- SUM aggregates and increments, integers only.
* **Search** -- ``SEARCH(value)`` -- full-word LIKE search, text only.

Each layer is identified by an :class:`EncryptionScheme`; onions peel from
the outermost (most secure) layer inwards, and never re-encrypt upwards
without an explicit re-encryption pass.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.errors import ProxyError


class Onion(str, Enum):
    """The onion identifier (one physical DBMS column per onion)."""

    EQ = "Eq"
    ORD = "Ord"
    ADD = "Add"
    SEARCH = "Search"


class EncryptionScheme(str, Enum):
    """An encryption layer within an onion (or PLAIN for decrypted data)."""

    RND = "RND"
    DET = "DET"
    JOIN = "JOIN"
    OPE = "OPE"
    OPE_JOIN = "OPE-JOIN"
    HOM = "HOM"
    SEARCH = "SEARCH"
    PLAIN = "PLAIN"


class ComputationClass(str, Enum):
    """The classes of computation a query can require on a column (§2.1)."""

    NONE = "none"                # projection / storage only
    EQUALITY = "equality"        # =, IN, GROUP BY, DISTINCT, COUNT(DISTINCT)
    EQUI_JOIN = "equi_join"      # equality join across columns
    ORDER = "order"              # <, >, BETWEEN, ORDER BY, MIN, MAX
    RANGE_JOIN = "range_join"    # order-based join across columns
    ADDITION = "addition"        # SUM, AVG, column increments
    WORD_SEARCH = "word_search"  # LIKE '% word %'
    PLAINTEXT = "plaintext"      # anything CryptDB cannot run on ciphertext


class SecurityLevel(int, Enum):
    """Ordering of schemes by how much they reveal (§8.3).

    RND and HOM reveal nothing; SEARCH reveals only the number of keywords;
    DET and JOIN reveal duplicates; OPE reveals order; PLAIN reveals all.
    Higher numeric value = more secure.
    """

    PLAIN = 0
    OPE = 1
    DET = 2
    SEARCH = 3
    RND = 4

    @classmethod
    def of(cls, scheme: EncryptionScheme) -> "SecurityLevel":
        mapping = {
            EncryptionScheme.RND: cls.RND,
            EncryptionScheme.HOM: cls.RND,
            EncryptionScheme.SEARCH: cls.SEARCH,
            EncryptionScheme.DET: cls.DET,
            EncryptionScheme.JOIN: cls.DET,
            EncryptionScheme.OPE: cls.OPE,
            EncryptionScheme.OPE_JOIN: cls.OPE,
            EncryptionScheme.PLAIN: cls.PLAIN,
        }
        return mapping[scheme]


# Layer stacks, outermost first (index 0 is the most secure, initial state).
ONION_LAYERS: dict[Onion, list[EncryptionScheme]] = {
    Onion.EQ: [EncryptionScheme.RND, EncryptionScheme.DET, EncryptionScheme.JOIN],
    Onion.ORD: [EncryptionScheme.RND, EncryptionScheme.OPE, EncryptionScheme.OPE_JOIN],
    Onion.ADD: [EncryptionScheme.HOM],
    Onion.SEARCH: [EncryptionScheme.SEARCH],
}

# Which onions make sense for which column kinds (§3.2: "the Search onion
# does not make sense for integers, and the Add onion does not make sense
# for strings").
ONIONS_FOR_INTEGER = (Onion.EQ, Onion.ORD, Onion.ADD)
ONIONS_FOR_TEXT = (Onion.EQ, Onion.ORD, Onion.SEARCH)
ONIONS_FOR_BINARY = (Onion.EQ,)

# The onion and minimum layer needed to evaluate each computation class.
_REQUIREMENTS: dict[ComputationClass, Optional[tuple[Onion, EncryptionScheme]]] = {
    ComputationClass.NONE: None,
    ComputationClass.EQUALITY: (Onion.EQ, EncryptionScheme.DET),
    ComputationClass.EQUI_JOIN: (Onion.EQ, EncryptionScheme.JOIN),
    ComputationClass.ORDER: (Onion.ORD, EncryptionScheme.OPE),
    ComputationClass.RANGE_JOIN: (Onion.ORD, EncryptionScheme.OPE_JOIN),
    ComputationClass.ADDITION: (Onion.ADD, EncryptionScheme.HOM),
    ComputationClass.WORD_SEARCH: (Onion.SEARCH, EncryptionScheme.SEARCH),
}


def requirement_for(computation: ComputationClass) -> Optional[tuple[Onion, EncryptionScheme]]:
    """Return the (onion, layer) a computation class needs, or None."""
    if computation is ComputationClass.PLAINTEXT:
        raise ProxyError("plaintext computations cannot be satisfied by any onion layer")
    return _REQUIREMENTS[computation]


def layer_index(onion: Onion, layer: EncryptionScheme) -> int:
    """Position of a layer within its onion (0 = outermost)."""
    layers = ONION_LAYERS[onion]
    if layer not in layers:
        raise ProxyError(f"layer {layer.value} is not part of onion {onion.value}")
    return layers.index(layer)


def is_at_least(current: EncryptionScheme, needed: EncryptionScheme, onion: Onion) -> bool:
    """True when the onion, currently at ``current``, already allows ``needed``.

    An onion allows a computation when it has been peeled *to or past* the
    required layer (a lower, less-secure layer still supports the operations
    of the layers above it for DET/JOIN, but not in general -- the check is
    simply positional within the onion's layer list).
    """
    return layer_index(onion, current) >= layer_index(onion, needed)

"""The wire codec: every PEP 249 value round-trips, every bomb is defused."""

from __future__ import annotations

import struct

import pytest

from repro.server.protocol import (
    FrameType,
    WireProtocolError,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
    expect_payload_dict,
)


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        1,
        -1,
        2**200,          # Paillier-sized integers must survive
        -(2**200),
        3.14159,
        -0.0,
        float("inf"),
        "",
        "hello",
        "naïve • ünïcode ∑",
        b"",
        b"\x00\xff" * 40,
        [],
        [1, "two", None, 3.0],
        (1, 2, 3),
        {},
        {"sql": "SELECT 1", "params": [1, None], "fetch": 0},
        {"nested": {"rows": [(1, "a"), (2, "b")], "deep": [[[1]]]}},
    ],
)
def test_value_roundtrip(value):
    assert decode_value(encode_value(value)) == value


def test_roundtrip_preserves_types():
    """bool is not int, tuple is not list, bytes is not str on the wire."""
    decoded = decode_value(encode_value([True, 1, (2,), [3], b"x", "x"]))
    assert decoded[0] is True and decoded[1] == 1 and not isinstance(decoded[1], bool)
    assert isinstance(decoded[2], tuple) and isinstance(decoded[3], list)
    assert isinstance(decoded[4], bytes) and isinstance(decoded[5], str)


def test_unencodable_type_rejected():
    with pytest.raises(WireProtocolError, match="cannot cross the wire"):
        encode_value(object())


def test_depth_bomb_rejected_on_encode():
    nested: list = []
    for _ in range(40):
        nested = [nested]
    with pytest.raises(WireProtocolError, match="nests too deeply"):
        encode_value(nested)


def test_depth_bomb_rejected_on_decode():
    # Hand-roll 40 nested single-element lists: the encoder would refuse.
    body = b"\x08" + struct.pack(">I", 1)
    data = body * 40 + b"\x00"
    with pytest.raises(WireProtocolError, match="nests too deeply"):
        decode_value(data)


def test_truncated_value_rejected():
    encoded = encode_value({"key": "value", "n": 123456789})
    for cut in range(1, len(encoded)):
        with pytest.raises(WireProtocolError):
            decode_value(encoded[:cut])


def test_trailing_bytes_rejected():
    with pytest.raises(WireProtocolError, match="trailing bytes"):
        decode_value(encode_value(42) + b"\x00")


def test_unknown_tag_rejected():
    with pytest.raises(WireProtocolError, match="unknown value tag"):
        decode_value(b"\x7f")


def test_container_count_bomb_rejected():
    """A list claiming 4 billion elements dies before allocating any."""
    data = b"\x08" + struct.pack(">I", 0xFFFFFFFF)
    with pytest.raises(WireProtocolError, match="exceeds the frame size|exceeds frame size"):
        decode_value(data)


def test_frame_roundtrip():
    payload = {"sql": "SELECT * FROM t", "params": None, "fetch": 64}
    frame_type, decoded = decode_frame(encode_frame(FrameType.EXECUTE, payload))
    assert frame_type is FrameType.EXECUTE
    assert decoded == payload


def test_empty_frame_rejected():
    with pytest.raises(WireProtocolError, match="empty frame"):
        decode_frame(b"")


def test_unknown_frame_type_rejected():
    with pytest.raises(WireProtocolError, match="unknown frame type"):
        decode_frame(b"\xee" + encode_value({}))


def test_expect_payload_dict():
    assert expect_payload_dict({"a": 1}, FrameType.EXECUTE) == {"a": 1}
    with pytest.raises(WireProtocolError, match="must be a mapping"):
        expect_payload_dict([1, 2], FrameType.EXECUTE)

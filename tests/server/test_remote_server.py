"""End-to-end: the remote connection as a drop-in for the in-process path."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.api import exceptions
from repro.api.connection import connect
from repro.server.loopback import LoopbackServer, connect_loopback


@pytest.fixture
def conn(loopback):
    connection = connect(url=loopback.url)
    yield connection
    connection.close()


def test_basic_roundtrip(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE rt (id int, name varchar(40), score int)")
    cur.execute("INSERT INTO rt (id, name, score) VALUES (?, ?, ?)", (1, "ada", 90))
    cur.execute("INSERT INTO rt (id, name, score) VALUES (2, 'bob', 75)")
    cur.execute("SELECT name, score FROM rt WHERE score >= ? ORDER BY id", (80,))
    assert cur.fetchall() == [("ada", 90)]
    assert cur.description[0][0] == "name"


def test_executemany_rowcount(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE em (id int, v int)")
    cur.executemany(
        "INSERT INTO em (id, v) VALUES (?, ?)", [(i, i * i) for i in range(25)]
    )
    assert cur.rowcount == 25
    cur.execute("SELECT COUNT(*) FROM em")
    assert cur.fetchone() == (25,)


def test_fetch_chunking_reassembles_everything(loopback):
    """A 3-row fetch chunk forces many FETCH frames; no row lost or reordered."""
    conn = connect(url=loopback.url, fetch_chunk=3)
    try:
        cur = conn.cursor()
        cur.execute("CREATE TABLE chunky (id int, label varchar(30))")
        cur.executemany(
            "INSERT INTO chunky (id, label) VALUES (?, ?)",
            [(i, f"row-{i}") for i in range(40)],
        )
        cur.execute("SELECT id, label FROM chunky ORDER BY id ASC")
        rows = cur.fetchall()
        assert rows == [(i, f"row-{i}") for i in range(40)]
    finally:
        conn.close()


def test_null_float_and_negative_values_cross_the_wire(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE vals (id int, f float, s varchar(20))")
    cur.execute(
        "INSERT INTO vals (id, f, s) VALUES (?, ?, ?)", (-5, 2.5, None)
    )
    cur.execute("SELECT id, f, s FROM vals")
    assert cur.fetchall() == [(-5, 2.5, None)]


def test_prepare_over_the_wire(conn):
    conn.execute("CREATE TABLE prep (id int, v int)")
    prepared = conn.proxy.prepare("INSERT INTO prep (id, v) VALUES (?, ?)")
    assert prepared["param_count"] == 2
    assert prepared["kind"] == "INSERT"


def test_error_classes_survive_the_wire(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE errs (id int, name varchar(20))")
    with pytest.raises(exceptions.NotSupportedError):
        cur.execute("SELECT id * name FROM errs")
    with pytest.raises(exceptions.ProgrammingError):
        cur.execute("SELECT * FROM no_such_table_anywhere")
    # The session survives SQL-level errors.
    cur.execute("SELECT COUNT(*) FROM errs")
    assert cur.fetchone() == (0,)


def test_server_stats_frame(conn):
    conn.execute("CREATE TABLE st (id int)")
    stats = conn.proxy.server_stats()
    assert stats["proxy"]["queries_processed"] >= 1
    assert stats["in_txn"] is False


def test_transaction_rollback_remote(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE txr (id int, v int)")
    cur.execute("INSERT INTO txr (id, v) VALUES (1, 10)")
    conn.begin()
    cur.execute("UPDATE txr SET v = 99 WHERE id = 1")
    cur.execute("SELECT v FROM txr")
    assert cur.fetchall() == [(99,)]
    conn.rollback()
    cur.execute("SELECT v FROM txr")
    assert cur.fetchall() == [(10,)]


def test_transaction_scope_with_statement(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE txs (id int, v int)")
    with pytest.raises(ZeroDivisionError):
        with conn:
            cur.execute("INSERT INTO txs (id, v) VALUES (1, 1)")
            raise ZeroDivisionError
    cur.execute("SELECT COUNT(*) FROM txs")
    assert cur.fetchone() == (0,)  # scope rolled back across the wire
    with conn:
        cur.execute("INSERT INTO txs (id, v) VALUES (2, 2)")
    cur.execute("SELECT COUNT(*) FROM txs")
    assert cur.fetchone() == (1,)


def test_concurrent_sessions_isolated_cursors(loopback):
    """Two clients interleave statements; each keeps its own result state."""
    a, b = connect(url=loopback.url), connect(url=loopback.url)
    try:
        ca, cb = a.cursor(), b.cursor()
        ca.execute("CREATE TABLE iso (id int, who varchar(10))")
        ca.execute("INSERT INTO iso (id, who) VALUES (1, 'a')")
        cb.execute("INSERT INTO iso (id, who) VALUES (2, 'b')")
        ca.execute("SELECT who FROM iso WHERE id = 1")
        cb.execute("SELECT who FROM iso WHERE id = 2")
        assert ca.fetchall() == [("a",)]
        assert cb.fetchall() == [("b",)]
    finally:
        a.close()
        b.close()


def test_transaction_exclusivity_across_sessions(loopback):
    """A session holding a transaction blocks others until it commits."""
    a, b = connect(url=loopback.url), connect(url=loopback.url)
    try:
        a.execute("CREATE TABLE excl (id int, v int)")
        a.execute("INSERT INTO excl (id, v) VALUES (1, 0)")
        a.begin()
        a.execute("UPDATE excl SET v = 1 WHERE id = 1")

        b_done = threading.Event()
        b_rows = []

        def b_reads():
            cur = b.execute("SELECT v FROM excl")
            b_rows.extend(cur.fetchall())
            b_done.set()

        worker = threading.Thread(target=b_reads)
        worker.start()
        # B must queue behind A's open transaction, not see its dirty write.
        assert not b_done.wait(timeout=0.5)
        a.commit()
        assert b_done.wait(timeout=30)
        worker.join(timeout=30)
        assert b_rows == [(1,)]  # served only after commit, sees final state
    finally:
        a.close()
        b.close()


def test_drain_refuses_new_statements_but_finishes_inflight(
    paillier_keypair, wait_until
):
    """The graceful-shutdown contract: in-flight finishes, new work refused."""
    from repro.crypto.keys import MasterKey

    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("drain-test"),
        hom_precompute=8,
    )
    a = connect(url=server.url)
    b = connect(url=server.url)
    try:
        a.execute("CREATE TABLE dr (id int, v int)")
        inflight_rows = [(i, i) for i in range(400)]
        result = {}

        def slow_statement():
            result["count"] = a.cursor().executemany(
                "INSERT INTO dr (id, v) VALUES (?, ?)", inflight_rows
            ).rowcount

        worker = threading.Thread(target=slow_statement)
        worker.start()
        wait_until(
            lambda: server.server._inflight > 0,
            message="the batch to reach the executor",
        )

        drainer = threading.Thread(target=server.drain)
        drainer.start()
        wait_until(
            lambda: server.server.draining,
            message="drain to flip the refuse-new-statements flag",
        )

        with pytest.raises(exceptions.OperationalError, match="draining"):
            b.execute("INSERT INTO dr (id, v) VALUES (9999, 9999)")

        worker.join(timeout=120)
        drainer.join(timeout=120)
        assert result["count"] == 400  # the in-flight batch fully landed
        stats = server.stats
        assert stats["dropped_inflight"] == 0
        assert stats["statements_refused_draining"] >= 1
    finally:
        for c in (a, b):
            try:
                c.close()
            except exceptions.Error:
                pass
        server.stop()


def test_draining_server_rejects_new_connections(paillier_keypair):
    from repro.crypto.keys import MasterKey

    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("drain-reject"),
        hom_precompute=8,
    )
    url = server.url
    server.drain(timeout=5)
    with pytest.raises(exceptions.Error):
        connect(url=url, connect_timeout=2)
    server.stop()


def test_connect_loopback_closes_server_with_connection(paillier_keypair):
    conn = connect_loopback(paillier=paillier_keypair, hom_precompute=8)
    conn.execute("CREATE TABLE lb (id int)")
    conn.close()
    conn.close()  # idempotent even though close() also stopped the server


def test_connect_url_argument_validation():
    with pytest.raises(exceptions.InterfaceError, match="scheme"):
        connect(url="mysql://localhost:3306")
    with pytest.raises(exceptions.InterfaceError, match="host and a port"):
        connect(url="repro://localhost")
    with pytest.raises(exceptions.InterfaceError, match="cannot be"):
        connect("memory", url="repro://localhost:1")
    with pytest.raises(exceptions.InterfaceError, match="always encrypted"):
        connect(url="repro://localhost:1", encrypted=False)


def test_connect_refused_maps_to_interface_error():
    with pytest.raises(exceptions.InterfaceError, match="cannot connect"):
        connect(url="repro://127.0.0.1:1", connect_timeout=2)


def test_cli_serves_and_drains_on_sigint():
    """`python -m repro.server` boots, serves a client, and exits 0 on SIGINT."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.server",
            "--host", "127.0.0.1", "--port", "0", "--paillier-bits", "512",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "listening on repro://" in banner
        url = banner.strip().split()[-1]
        conn = connect(url=url)
        cur = conn.cursor()
        cur.execute("CREATE TABLE cli (id int)")
        cur.execute("INSERT INTO cli (id) VALUES (7)")
        cur.execute("SELECT id FROM cli")
        assert cur.fetchall() == [(7,)]
        conn.close()
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "dropped in flight" in out
        assert "0 dropped in flight" in out
    finally:
        if proc.poll() is None:
            proc.kill()

"""The AEAD transport: handshake key agreement and fail-closed records."""

from __future__ import annotations

import pytest

from repro.server.protocol import MAGIC, PROTOCOL_VERSION
from repro.server.transport import (
    SecureChannel,
    TransportError,
    build_hello,
    derive_directional_keys,
    fresh_nonce,
    generate_keypair,
    parse_hello,
    shared_secret,
)


def make_channel_pair(auth_client=b"", auth_server=b""):
    """Run the ECDH handshake math both sides would run over the wire."""
    client_priv, client_pub = generate_keypair()
    server_priv, server_pub = generate_keypair()
    client_nonce, server_nonce = fresh_nonce(), fresh_nonce()
    client_secret = shared_secret(client_priv, server_pub.serialize())
    server_secret = shared_secret(server_priv, client_pub.serialize())
    assert client_secret == server_secret
    client = SecureChannel.for_client(
        client_secret, client_nonce, server_nonce, auth_client
    )
    server = SecureChannel.for_server(
        server_secret, client_nonce, server_nonce, auth_server
    )
    return client, server


def test_ecdh_shared_secret_agreement():
    client, server = make_channel_pair()
    assert server.open(client.seal(b"hello server")) == b"hello server"
    assert client.open(server.seal(b"hello client")) == b"hello client"


def test_directional_keys_are_distinct():
    keys = derive_directional_keys(b"secret" * 4, b"cn" * 8, b"sn" * 8, b"")
    assert len(keys) == 4
    assert len(set(keys)) == 4  # c2s/s2c enc and mac keys all differ
    assert all(len(k) == 16 for k in keys)


def test_auth_key_changes_every_derived_key():
    base = derive_directional_keys(b"s" * 24, b"c" * 16, b"n" * 16, b"")
    keyed = derive_directional_keys(b"s" * 24, b"c" * 16, b"n" * 16, b"psk")
    assert all(a != b for a, b in zip(base, keyed))


def test_sequence_numbers_advance():
    client, server = make_channel_pair()
    for i in range(5):
        record = client.seal(f"msg {i}".encode())
        assert record[:8] == i.to_bytes(8, "big")
        assert server.open(record) == f"msg {i}".encode()


def test_replayed_record_rejected():
    client, server = make_channel_pair()
    record = client.seal(b"once")
    assert server.open(record) == b"once"
    with pytest.raises(TransportError, match="replayed, reordered, or dropped"):
        server.open(record)


def test_reordered_records_rejected():
    client, server = make_channel_pair()
    first, second = client.seal(b"first"), client.seal(b"second")
    with pytest.raises(TransportError, match="replayed, reordered, or dropped"):
        server.open(second)
    # The channel failed closed: even the in-order record is now unusable
    # only if the caller keeps going; a fresh delivery of `first` works.
    assert server.open(first) == b"first"


def test_tampered_ciphertext_rejected():
    client, server = make_channel_pair()
    record = bytearray(client.seal(b"authentic plaintext"))
    record[10] ^= 0x01
    with pytest.raises(TransportError, match="authentication failed"):
        server.open(bytes(record))


def test_tampered_tag_rejected():
    client, server = make_channel_pair()
    record = bytearray(client.seal(b"authentic"))
    record[-1] ^= 0x80
    with pytest.raises(TransportError, match="authentication failed"):
        server.open(bytes(record))


def test_short_record_rejected():
    _, server = make_channel_pair()
    with pytest.raises(TransportError, match="too short"):
        server.open(b"\x00" * 10)


def test_wrong_auth_key_fails_first_record():
    client, server = make_channel_pair(auth_client=b"right", auth_server=b"wrong")
    with pytest.raises(TransportError, match="authentication failed"):
        server.open(client.seal(b"should never decrypt"))


def test_ciphertext_hides_plaintext():
    client, _ = make_channel_pair()
    plaintext = b"SELECT secret FROM vault" * 4
    record = client.seal(plaintext)
    assert plaintext not in record


def test_invalid_public_key_rejected():
    private, _ = generate_keypair()
    with pytest.raises(TransportError, match="invalid handshake public key"):
        shared_secret(private, b"\x04" + b"\x01" * 48)  # not on the curve


def test_hello_roundtrip_and_validation():
    _, public = generate_keypair()
    nonce = fresh_nonce()
    payload = build_hello(public, nonce)
    assert payload["magic"] == MAGIC and payload["version"] == PROTOCOL_VERSION
    peer_pub, peer_nonce = parse_hello(payload, "client")
    assert peer_pub == public.serialize() and peer_nonce == nonce

    with pytest.raises(TransportError, match="not speaking"):
        parse_hello({**payload, "magic": "mysql"}, "client")
    with pytest.raises(TransportError, match="protocol version"):
        parse_hello({**payload, "version": 99}, "client")
    with pytest.raises(TransportError, match="missing key material"):
        parse_hello({**payload, "nonce": b"short"}, "client")
    with pytest.raises(TransportError, match="not a mapping"):
        parse_hello("hello", "client")

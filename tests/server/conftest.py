"""Shared fixtures for the repro.server test suite."""

from __future__ import annotations

import pytest

from repro.crypto.keys import MasterKey
from repro.server.loopback import LoopbackServer


@pytest.fixture(scope="module")
def loopback(paillier_keypair):
    """One live loopback server per test module; tests use unique tables."""
    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("server-suite"),
        hom_precompute=8,
    )
    yield server
    server.stop()

"""Client self-healing and server overload reactions under injected faults.

Companion to the chaos conformance lane (``tests/conformance/test_chaos.py``):
these tests pin down the *individual* reactions -- transparent SELECT retry,
refusal to retry writes, clean in-transaction aborts, hung/garbage peers
failing fast as ``InterfaceError``, per-statement server timeouts and their
counters in the STATS frame -- with single deterministic faults instead of
randomized schedules.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro import faults
from repro.api import exceptions
from repro.api.connection import connect
from repro.api.remote_backend import parse_url
from repro.crypto.keys import MasterKey
from repro.server.loopback import LoopbackServer

#: Fast client recovery so injected disconnects heal in milliseconds.
FAST_CLIENT = dict(
    max_retries=3,
    reconnect_attempts=3,
    reconnect_backoff=0.01,
    reconnect_backoff_cap=0.05,
)


@pytest.fixture()
def server(paillier_keypair):
    instance = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("fault-tests"),
        hom_precompute=4,
    )
    yield instance
    instance.stop()


def _connect(server, **kwargs):
    return connect(url=server.url, **{**FAST_CLIENT, **kwargs})


# ---------------------------------------------------------------------------
# client retry / reconnect
# ---------------------------------------------------------------------------
def test_select_retries_transparently(server):
    """A recv fault on a SELECT answer heals without surfacing an error."""
    conn = _connect(server)
    try:
        conn.execute("CREATE TABLE r (id INT)")
        conn.execute("INSERT INTO r (id) VALUES (?)", (7,))
        plan = faults.FaultPlan(
            1,
            [
                faults.FaultRule(
                    "transport.recv",
                    trigger_hits=(1,),
                    match={"head": ("SELECT",)},
                )
            ],
        )
        with faults.armed(plan):
            rows = conn.execute("SELECT id FROM r").fetchall()
        assert rows == [(7,)]
        client = conn.proxy
        assert client.reconnects == 1
        assert client.retries == 1
    finally:
        conn.close()


def test_write_is_never_resent(server):
    """A send fault on an INSERT reconnects but refuses to guess."""
    conn = _connect(server)
    try:
        conn.execute("CREATE TABLE w (id INT)")
        plan = faults.FaultPlan(
            1,
            [
                faults.FaultRule(
                    "transport.send",
                    trigger_hits=(1,),
                    match={"head": ("INSERT",)},
                )
            ],
        )
        with faults.armed(plan):
            with pytest.raises(
                exceptions.OperationalError, match="may not have been applied"
            ):
                conn.execute("INSERT INTO w (id) VALUES (?)", (1,))
        client = conn.proxy
        assert client.retries == 0, "writes must never be transparently resent"
        assert client.reconnects == 1
        # Pre-send fault: the statement genuinely never happened, and the
        # re-established session serves immediately.
        assert conn.execute("SELECT COUNT(*) FROM w").fetchall() == [(0,)]
        conn.execute("INSERT INTO w (id) VALUES (?)", (1,))
        assert conn.execute("SELECT COUNT(*) FROM w").fetchall() == [(1,)]
    finally:
        conn.close()


def test_in_transaction_fault_aborts_cleanly(server):
    """Losing the wire mid-transaction: clean abort, server-side rollback."""
    conn = _connect(server)
    try:
        conn.execute("CREATE TABLE txn (id INT)")
        plan = faults.FaultPlan(
            1,
            [
                # First in-transaction INSERT passes, the second is cut off.
                faults.FaultRule(
                    "transport.send",
                    trigger_hits=(2,),
                    match={"in_txn": (True,)},
                )
            ],
        )
        with faults.armed(plan):
            conn.execute("BEGIN")
            conn.execute("INSERT INTO txn (id) VALUES (?)", (1,))
            with pytest.raises(
                exceptions.OperationalError, match="transaction aborted"
            ):
                conn.execute("INSERT INTO txn (id) VALUES (?)", (2,))
        client = conn.proxy
        assert not client.transactions.in_transaction
        assert client.reconnects == 1
        # The server rolled the whole transaction back on disconnect.
        assert conn.execute("SELECT COUNT(*) FROM txn").fetchall() == [(0,)]
        # close() stays idempotent after all of this.
        conn.close()
        conn.close()
    finally:
        conn.close()


def test_exhausted_reconnects_mark_connection_dead(server):
    """When the server is really gone, the client fails as InterfaceError."""
    conn = _connect(server, reconnect_attempts=2, reconnect_backoff=0.01)
    conn.execute("CREATE TABLE gone (id INT)")
    server.stop()
    with pytest.raises(exceptions.Error):
        conn.execute("SELECT COUNT(*) FROM gone")
    # Once dead, every call fails fast with the cached reason...
    with pytest.raises(exceptions.InterfaceError, match="is gone"):
        conn.execute("SELECT COUNT(*) FROM gone")
    assert not conn.proxy.transactions.in_transaction
    # ...and close() cannot raise through the dead socket.
    conn.close()
    conn.close()


# ---------------------------------------------------------------------------
# connect-phase hardening
# ---------------------------------------------------------------------------
def test_parse_url_rejects_non_numeric_port():
    with pytest.raises(exceptions.InterfaceError, match="invalid URL"):
        parse_url("repro://localhost:not-a-port")


def test_silent_peer_fails_handshake_within_connect_timeout():
    """A peer that accepts and says nothing: InterfaceError, fast."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()
    try:
        with pytest.raises(
            exceptions.InterfaceError, match=f"handshake with repro://{host}:{port}"
        ):
            connect(url=f"repro://{host}:{port}", connect_timeout=0.3)
    finally:
        listener.close()


def test_garbage_peer_fails_handshake_cleanly():
    """A peer that answers garbage: InterfaceError, never a raw struct error."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()

    def serve_garbage():
        peer, _ = listener.accept()
        peer.recv(4096)
        peer.sendall(struct.pack("!I", 12) + b"not-a-frame!")
        peer.close()

    thread = threading.Thread(target=serve_garbage, daemon=True)
    thread.start()
    try:
        with pytest.raises(exceptions.InterfaceError, match="handshake"):
            connect(url=f"repro://{host}:{port}", connect_timeout=2)
        thread.join(timeout=5)
    finally:
        listener.close()


# ---------------------------------------------------------------------------
# server statement timeout + overload counters
# ---------------------------------------------------------------------------
def test_statement_timeout_surfaces_retryable_error(paillier_keypair, wait_until):
    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("timeout-tests"),
        hom_precompute=4,
        statement_timeout=0.2,
    )
    conn = _connect(server)
    try:
        conn.execute("CREATE TABLE slow (id INT)")
        plan = faults.FaultPlan(
            1,
            [
                faults.FaultRule(
                    "backend.execute",
                    trigger_hits=(1,),
                    kind="delay",
                    delay=0.8,
                    scope=server.proxy.db,
                )
            ],
        )
        with faults.armed(plan):
            with pytest.raises(
                exceptions.OperationalError, match="timed out.*retry later"
            ):
                conn.execute("INSERT INTO slow (id) VALUES (?)", (1,))
        # The admission lock is held until the abandoned thread finishes;
        # the next statement then runs normally and the counter shows up in
        # the STATS frame's server block.
        wait_until(
            lambda: conn.proxy.server_stats()["server"]["statements_timed_out"]
            == 1,
            message="timed-out statement to be accounted",
        )
        stats = conn.proxy.server_stats()
        assert stats["server"]["statements_shed"] == 0
        assert conn.execute("SELECT COUNT(*) FROM slow").fetchall()[0][0] in (0, 1)
    finally:
        conn.close()
        server.stop()


def test_stats_frame_carries_pool_health(paillier_keypair):
    from repro.parallel import ParallelConfig

    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("pool-stats"),
        hom_precompute=4,
        parallelism=ParallelConfig(workers=2, chunk_threshold=4),
    )
    conn = _connect(server)
    try:
        stats = conn.proxy.server_stats()
        cache = stats["cache"]
        for key in (
            "pool_restarts",
            "pool_failures",
            "pool_circuit_opens",
            "pool_circuit_open",
        ):
            assert cache[key] == 0, key
        server.proxy.pool.restart()
        assert conn.proxy.server_stats()["cache"]["pool_restarts"] == 1
    finally:
        conn.close()
        server.stop()

"""Adversarial protocol tests: every attack drops one session, never the server.

Each test throws malformed, hostile, or badly-timed traffic at a live
loopback server through a raw socket, then proves the blast radius with the
same check: a well-behaved client connects afterwards and gets correct
answers.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.api import exceptions
from repro.api.connection import connect
from repro.crypto.keys import MasterKey
from repro.server import framing, protocol, transport
from repro.server.loopback import LoopbackServer
from repro.server.protocol import FrameType


def raw_socket(server, timeout=10.0, recv_buffer=None):
    host, port = server.server.address
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    if recv_buffer is not None:
        # Must be set before connect so the TCP window is negotiated small.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, recv_buffer)
    sock.settimeout(timeout)
    sock.connect((host, port))
    return sock


def client_handshake(sock, auth_key=b""):
    """The legitimate client handshake, by hand, over a raw socket."""
    private, public = transport.generate_keypair()
    nonce = transport.fresh_nonce()
    framing.send_record(
        sock,
        protocol.encode_frame(FrameType.HELLO, transport.build_hello(public, nonce)),
    )
    frame_type, payload = protocol.decode_frame(framing.recv_record(sock))
    assert frame_type is FrameType.HELLO
    server_pub, server_nonce = transport.parse_hello(payload, "server")
    channel = transport.SecureChannel.for_client(
        transport.shared_secret(private, server_pub), nonce, server_nonce, auth_key
    )
    confirm_type, _ = protocol.decode_frame(channel.open(framing.recv_record(sock)))
    assert confirm_type is FrameType.HELLO_OK
    return channel


def assert_connection_dropped(sock):
    """The server must close a hostile connection (EOF, never a hang)."""
    sock.settimeout(10)
    try:
        leftover = sock.recv(65536)
        while leftover:
            leftover = sock.recv(65536)
    except OSError:
        pass  # reset is as good as EOF
    finally:
        sock.close()


def assert_still_serving(server, table):
    """A fresh legitimate client gets full service after the attack."""
    conn = connect(url=server.url, auth_key=server.config.auth_key)
    try:
        cur = conn.cursor()
        cur.execute(f"CREATE TABLE {table} (id int, v int)")
        cur.execute(f"INSERT INTO {table} (id, v) VALUES (1, 41)")
        cur.execute(f"SELECT v FROM {table} WHERE id = ?", (1,))
        assert cur.fetchall() == [(41,)]
    finally:
        conn.close()


def test_garbage_hello_dropped(loopback):
    sock = raw_socket(loopback)
    framing.send_record(sock, b"\xde\xad\xbe\xef not a frame at all")
    assert_connection_dropped(sock)
    assert_still_serving(loopback, "adv_garbage")


def test_non_hello_first_frame_dropped(loopback):
    sock = raw_socket(loopback)
    framing.send_record(sock, protocol.encode_frame(FrameType.EXECUTE, {"sql": "x"}))
    assert_connection_dropped(sock)
    assert_still_serving(loopback, "adv_nonhello")


def test_truncated_record_dropped(loopback):
    sock = raw_socket(loopback)
    sock.sendall(struct.pack(">I", 500) + b"only a few bytes")
    sock.shutdown(socket.SHUT_WR)
    assert_connection_dropped(sock)
    assert_still_serving(loopback, "adv_trunc")


def test_oversized_length_prefix_dropped_without_allocation(loopback):
    sock = raw_socket(loopback)
    # Claim a 3.5 GiB record; the server must refuse at the header.
    sock.sendall(struct.pack(">I", 0xE0000000))
    assert_connection_dropped(sock)
    assert_still_serving(loopback, "adv_oversize")


def test_corrupt_hello_public_key_dropped(loopback):
    sock = raw_socket(loopback)
    _, public = transport.generate_keypair()
    hello = transport.build_hello(public, transport.fresh_nonce())
    hello["pub"] = b"\x04" + b"\x07" * 48  # not a curve point
    framing.send_record(sock, protocol.encode_frame(FrameType.HELLO, hello))
    assert_connection_dropped(sock)
    assert loopback.stats["handshake_failures"] >= 1
    assert_still_serving(loopback, "adv_badpoint")


def test_unsealed_frame_after_handshake_dropped(loopback):
    sock = raw_socket(loopback)
    client_handshake(sock)
    # A cleartext frame where a sealed record is required fails the MAC.
    framing.send_record(sock, protocol.encode_frame(FrameType.STATS, {}))
    assert_connection_dropped(sock)
    assert_still_serving(loopback, "adv_unsealed")


def test_replayed_sealed_record_dropped(loopback):
    sock = raw_socket(loopback)
    channel = client_handshake(sock)
    record = channel.seal(protocol.encode_frame(FrameType.STATS, {}))
    framing.send_record(sock, record)
    response = channel.open(framing.recv_record(sock))
    frame_type, _ = protocol.decode_frame(response)
    assert frame_type is FrameType.STATS_RESULT
    # Capture-and-replay of the identical sealed bytes must kill the session.
    framing.send_record(sock, record)
    assert_connection_dropped(sock)
    assert_still_serving(loopback, "adv_replay")


def test_wrong_auth_key_rejected(paillier_keypair):
    server = LoopbackServer(
        auth_key=b"correct horse",
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("auth-test"),
        hom_precompute=8,
    )
    try:
        with pytest.raises(exceptions.InterfaceError, match="handshake.*failed"):
            connect(url=server.url, auth_key=b"battery staple")
        before = server.stats["sessions_dropped"]
        assert before >= 0
        # The right key still works.
        conn = connect(url=server.url, auth_key=b"correct horse")
        conn.execute("CREATE TABLE auth_ok (id int)")
        conn.close()
    finally:
        server.stop()


def test_mid_statement_disconnect_keeps_server_alive(loopback, wait_until):
    before = loopback.stats["sessions_dropped"]
    sock = raw_socket(loopback)
    channel = client_handshake(sock)
    framing.send_record(
        sock,
        channel.seal(
            protocol.encode_frame(
                FrameType.EXECUTE,
                {"sql": "CREATE TABLE adv_midstmt_victim (id int, v int)",
                 "params": None, "fetch": 0},
            )
        ),
    )
    sock.close()  # vanish while the statement is on the executor
    wait_until(
        lambda: loopback.stats["sessions_dropped"] > before,
        message="the vanished session to be dropped",
    )
    assert_still_serving(loopback, "adv_midstmt")


def test_session_drop_is_counted(loopback, wait_until):
    before = loopback.stats["sessions_dropped"]
    sock = raw_socket(loopback)
    channel = client_handshake(sock)
    framing.send_record(sock, b"\x00" * 64)  # unauthenticated sealed record
    assert_connection_dropped(sock)
    wait_until(
        lambda: loopback.stats["sessions_dropped"] > before,
        message="the tampered session to be dropped",
    )


def test_slow_reader_is_dropped_not_buffered(paillier_keypair, wait_until):
    """A peer that stops reading responses hits the send timeout."""
    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("slow-reader"),
        hom_precompute=8,
        send_timeout=1.0,
        write_buffer_bytes=4096,
        sock_sndbuf=8192,
    )
    feeder = connect(url=server.url)
    try:
        cur = feeder.cursor()
        cur.execute("CREATE TABLE slow (id int, pad varchar(400))")
        cur.executemany(
            "INSERT INTO slow (id, pad) VALUES (?, ?)",
            [(i, "x" * 380) for i in range(600)],
        )
        sock = raw_socket(server, recv_buffer=8192)
        channel = client_handshake(sock)
        # Ask for the entire fat result in one frame, then never read it.
        framing.send_record(
            sock,
            channel.seal(
                protocol.encode_frame(
                    FrameType.EXECUTE,
                    {"sql": "SELECT id, pad FROM slow", "params": None, "fetch": 0},
                )
            ),
        )
        sock.settimeout(60)
        before = server.stats["sessions_dropped"]
        wait_until(
            lambda: server.stats["sessions_dropped"] > before,
            timeout=60,
            interval=0.1,
            message="the unread-response session to be dropped",
        )
        sock.close()
        # The drop freed the shared proxy: other clients still get answers.
        cur.execute("SELECT COUNT(*) FROM slow")
        assert cur.fetchone() == (600,)
    finally:
        feeder.close()
        server.stop()

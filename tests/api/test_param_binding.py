"""Parameter binding: safety (no injection) and batching equivalence."""

import random

import pytest

import repro
from repro.crypto.keys import MasterKey
from repro.crypto.paillier import PaillierKeyPair


@pytest.fixture()
def conn(paillier_keypair):
    connection = repro.connect(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("binding-test"),
    )
    connection.execute(
        "CREATE TABLE notes (id int, body varchar(200), score int)"
    )
    return connection


AWKWARD_STRINGS = [
    "O'Brien",                       # embedded quote
    "'' OR ''='",                    # classic injection shape
    "x' OR '1'='1",                  # injection with unbalanced quote
    "question? marks ?? everywhere?",  # placeholder characters as data
    "naïve — ünïcode ✓ 日本語",        # non-ASCII
    "line\nbreak\tand tab",          # control characters
    "100% LIKE _done_",              # SQL wildcard characters
    "-- not a comment",              # comment marker as data
    "",                              # empty string
]


@pytest.mark.parametrize("body", AWKWARD_STRINGS)
def test_awkward_literals_round_trip_encrypted(conn, body):
    conn.execute("INSERT INTO notes (id, body, score) VALUES (?, ?, ?)", (1, body, 5))
    rows = conn.execute("SELECT body FROM notes WHERE id = ?", (1,)).fetchall()
    assert rows == [(body,)]
    # Equality *on* the awkward value itself must also bind safely.
    rows = conn.execute("SELECT id FROM notes WHERE body = ?", (body,)).fetchall()
    assert rows == [(1,)]
    # And the table still holds exactly one row: the value never spliced
    # extra SQL into the statement.
    assert conn.execute("SELECT COUNT(*) FROM notes").fetchone()[0] == 1


@pytest.mark.parametrize("body", AWKWARD_STRINGS)
def test_awkward_literals_round_trip_plain_backend(body):
    conn = repro.connect(encrypted=False)
    conn.execute("CREATE TABLE notes (id int, body varchar(200))")
    conn.execute("INSERT INTO notes (id, body) VALUES (?, ?)", (1, body))
    assert conn.execute(
        "SELECT body FROM notes WHERE id = ?", (1,)
    ).fetchall() == [(body,)]
    assert conn.execute(
        "SELECT id FROM notes WHERE body = ?", (body,)
    ).fetchall() == [(1,)]
    assert conn.execute("SELECT COUNT(*) FROM notes").fetchone()[0] == 1


def test_numeric_none_and_negative_parameters(conn):
    conn.execute("INSERT INTO notes (id, body, score) VALUES (?, ?, ?)", (1, None, -42))
    assert conn.execute(
        "SELECT body, score FROM notes WHERE id = ?", (1,)
    ).fetchall() == [(None, -42)]
    assert conn.execute(
        "SELECT id FROM notes WHERE score < ?", (0,)
    ).fetchall() == [(1,)]
    assert conn.execute(
        "SELECT id FROM notes WHERE body IS NULL"
    ).fetchall() == [(1,)]


def test_in_between_and_increment_binding(conn):
    conn.executemany(
        "INSERT INTO notes (id, body, score) VALUES (?, ?, ?)",
        [(i, f"note {i}", 10 * i) for i in range(1, 6)],
    )
    assert conn.execute(
        "SELECT id FROM notes WHERE id IN (?, ?) ORDER BY id", (2, 4)
    ).fetchall() == [(2,), (4,)]
    assert conn.execute(
        "SELECT id FROM notes WHERE score BETWEEN ? AND ? ORDER BY id", (20, 40)
    ).fetchall() == [(2,), (3,), (4,)]
    conn.execute("UPDATE notes SET score = score + ? WHERE id = ?", (7, 3))
    assert conn.execute(
        "SELECT score FROM notes WHERE id = ?", (3,)
    ).fetchone() == (37,)
    conn.execute("UPDATE notes SET score = score - ? WHERE id = ?", (2, 3))
    assert conn.execute(
        "SELECT score FROM notes WHERE id = ?", (3,)
    ).fetchone() == (35,)


def _deterministic_randomness(monkeypatch, seed: int) -> None:
    """Make every source of encryption randomness reproducible."""
    import repro.crypto.rnd as rnd_module
    import repro.crypto.search as search_module

    rng = random.Random(seed)

    def random_bytes(n):
        return rng.getrandbits(8 * n).to_bytes(n, "big")

    # RND IVs and SEARCH word splits both bind random_bytes at import time.
    monkeypatch.setattr(rnd_module, "random_bytes", random_bytes)
    monkeypatch.setattr(search_module, "random_bytes", random_bytes)

    def next_randomness(self):
        n = self.public.n
        r = rng.randrange(1, n - 1)
        return pow(r, n, self.public.n_squared)

    monkeypatch.setattr(PaillierKeyPair, "_next_randomness", next_randomness)


def _server_rows(connection):
    backend = connection.backend
    return {
        name: sorted(
            (sorted(row.items(), key=lambda kv: kv[0]) for _, row in
             backend.table(name).scan()),
            key=repr,
        )
        for name in backend.table_names()
    }


def test_single_row_executemany_matches_execute_byte_for_byte(
    paillier_keypair, monkeypatch
):
    """executemany([row]) and execute(row) produce identical ciphertext.

    Encryption randomness (RND IVs, Paillier factors) is patched to a seeded
    stream so the two runs are comparable byte-for-byte: for a single row the
    columnar pipeline draws randomness in exactly the per-row order, so any
    divergence means the batched bind encrypts differently from per-statement
    rewriting.
    """
    row = (1, "body with 'quotes' and ? marks", 99)

    def fresh_connection():
        return repro.connect(
            paillier=paillier_keypair,
            master_key=MasterKey.from_passphrase("byte-identical"),
            hom_precompute=0,  # pool draws would desynchronise the streams
        )

    _deterministic_randomness(monkeypatch, seed=1234)
    batched = fresh_connection()
    batched.execute("CREATE TABLE notes (id int, body varchar(200), score int)")
    batched.executemany(
        "INSERT INTO notes (id, body, score) VALUES (?, ?, ?)", [row]
    )

    _deterministic_randomness(monkeypatch, seed=1234)
    sequential = fresh_connection()
    sequential.execute("CREATE TABLE notes (id int, body varchar(200), score int)")
    sequential.execute("INSERT INTO notes (id, body, score) VALUES (?, ?, ?)", row)

    assert _server_rows(batched) == _server_rows(sequential)


def test_executemany_matches_sequential_execute_decrypted(paillier_keypair):
    """Batched and scalar loading agree wherever the application can look.

    The columnar pipeline draws its RND/HOM randomness column-at-a-time, so
    raw ciphertexts differ from a scalar loop's -- but under the same master
    key every deterministic layer matches, decrypted results are identical,
    and the per-row randomness is never replayed across the batch.
    """
    rows = [
        (i, f"body {i} with 'quotes' and ? marks", 100 - i)
        for i in range(1, 8)
    ]

    def fresh_connection():
        return repro.connect(
            paillier=paillier_keypair,
            master_key=MasterKey.from_passphrase("batch-equivalence"),
        )

    batched = fresh_connection()
    batched.execute("CREATE TABLE notes (id int, body varchar(200), score int)")
    batched.executemany(
        "INSERT INTO notes (id, body, score) VALUES (?, ?, ?)", rows
    )

    sequential = fresh_connection()
    sequential.execute("CREATE TABLE notes (id int, body varchar(200), score int)")
    for row in rows:
        sequential.execute("INSERT INTO notes (id, body, score) VALUES (?, ?, ?)", row)

    query = "SELECT id, body, score FROM notes ORDER BY id"
    assert batched.execute(query).fetchall() == sequential.execute(query).fetchall()
    assert batched.execute(query).fetchall() == rows

    # Same master key: predicates rewritten by either proxy select the same
    # rows from the other's data (the deterministic layers agree).
    assert batched.execute(
        "SELECT body FROM notes WHERE id = ?", (3,)
    ).fetchall() == sequential.execute(
        "SELECT body FROM notes WHERE id = ?", (3,)
    ).fetchall()

    # Freshness: no RND IV or Eq ciphertext is replayed across the batch.
    ivs = set()
    eq_cells = set()
    for _, server_row in batched.backend.table("table1").scan():
        ivs.add(bytes(server_row["C1_IV"]))
        eq_cells.add(bytes(server_row["C1_Eq"]))
    assert len(ivs) == len(rows)
    assert len(eq_cells) == len(rows)

    # Row/IV alignment: every batch-written cell decrypts through the
    # *scalar* decryptor with its own row's IV (a column/row zip bug in the
    # batched bind would scramble exactly this).
    from repro.core.onion import Onion

    proxy = batched.proxy
    id_col = proxy.schema.column("notes", "id")
    body_col = proxy.schema.column("notes", "body")
    decrypted_rows = []
    for _, server_row in batched.backend.table("table1").scan():
        row_id = proxy.encryptor.decrypt_value(
            id_col, Onion.EQ, id_col.onion_state(Onion.EQ).level,
            server_row["C1_Eq"], server_row["C1_IV"],
        )
        body = proxy.encryptor.decrypt_value(
            body_col, Onion.EQ, body_col.onion_state(Onion.EQ).level,
            server_row["C2_Eq"], server_row["C2_IV"],
        )
        decrypted_rows.append((row_id, body))
    assert sorted(decrypted_rows) == sorted((i, b) for i, b, _ in rows)


def test_executemany_never_replays_baked_randomness(conn):
    """A mixed literal+placeholder INSERT re-encrypts its literal per row.

    The literal 7 feeds an encrypted column, so its RND ciphertext/IV is
    baked into the (non-cacheable) plan; executemany must re-rewrite per
    row rather than replaying the same IV for every inserted row.
    """
    conn.executemany(
        "INSERT INTO notes (id, body, score) VALUES (?, ?, 7)",
        [(i, f"note {i}") for i in range(1, 5)],
    )
    score_cells = set()
    for _, row in conn.backend.table("table1").scan():
        score_cells.add(bytes(row["C3_Eq"]))
    assert len(score_cells) == 4  # all-distinct RND ciphertexts for the same 7
    assert conn.execute(
        "SELECT COUNT(*) FROM notes WHERE score = ?", (7,)
    ).fetchone()[0] == 4


def test_placeholder_in_unbindable_position_is_rejected(conn):
    from repro.api import NotSupportedError, ProgrammingError

    with pytest.raises(NotSupportedError):
        # LIKE patterns drive the SEARCH rewrite and must be literals.
        conn.execute("SELECT id FROM notes WHERE body LIKE ?", ("%word%",))
    with pytest.raises((NotSupportedError, ProgrammingError)):
        conn.execute("SELECT ? FROM notes", (1,))

"""executemany batch semantics through the columnar pipeline.

The batched path plans the statement shape once, validates every parameter
row up front, encrypts all rows column-at-a-time and (for single-row INSERT
shapes) forwards one multi-row INSERT to the DBMS -- these tests pin down
the user-visible semantics: error behaviour, empty batches, and transaction
visibility/rollback of batch inserts.
"""

import pytest

import repro
from repro.api import ProgrammingError
from repro.crypto.keys import MasterKey


@pytest.fixture()
def conn(paillier_keypair):
    connection = repro.connect(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("executemany-batches"),
    )
    connection.execute("CREATE TABLE items (id int, label varchar(80), qty int)")
    return connection


def _count(conn):
    return conn.execute("SELECT COUNT(*) FROM items").fetchone()[0]


def test_param_count_mismatch_rejects_whole_batch(conn):
    """A bad row anywhere in the batch fails it before any row is written."""
    rows = [(1, "a", 10), (2, "b"), (3, "c", 30)]
    with pytest.raises(ProgrammingError):
        conn.executemany("INSERT INTO items (id, label, qty) VALUES (?, ?, ?)", rows)
    assert _count(conn) == 0
    with pytest.raises(ProgrammingError):
        conn.executemany(
            "INSERT INTO items (id, label, qty) VALUES (?, ?, ?)",
            [(1, "a", 10, "extra")],
        )
    assert _count(conn) == 0
    # Same contract on the per-row fallback path: a baked literal written to
    # an encrypted column makes the plan non-cacheable, but a later bad row
    # must still fail the batch before any row is written.
    with pytest.raises(ProgrammingError):
        conn.executemany(
            "INSERT INTO items (id, label, qty) VALUES (?, ?, 7)",
            [(1, "a"), (2, "b"), (3,)],
        )
    assert _count(conn) == 0


def test_empty_batch_is_a_pure_noop(conn):
    """PEP 249: executemany with no parameter rows does nothing at all.

    Regression test: this used to prepare (and therefore rewrite, adjust
    onions for, and plan-cache) the statement shape, raising for shapes the
    proxy could not prepare -- a no-op must not touch the database.
    """
    cursor = conn.cursor()
    cursor.executemany("INSERT INTO items (id, label, qty) VALUES (?, ?, ?)", [])
    assert cursor.rowcount == 0
    assert _count(conn) == 0
    before = conn.proxy.stats.queries_processed
    # Even a statement over a nonexistent table is silently skipped...
    cursor.executemany("INSERT INTO nowhere (id) VALUES (?)", [])
    assert cursor.rowcount == 0
    # ...and nothing reached the proxy or the DBMS.
    assert conn.proxy.stats.queries_processed == before
    # Empty iterators (not just empty lists) count as empty sequences.
    cursor.executemany("INSERT INTO items (id, label, qty) VALUES (?, ?, ?)", iter(()))
    assert cursor.rowcount == 0
    # The bad shape still fails loudly the moment it has rows to bind.
    with pytest.raises(ProgrammingError):
        cursor.executemany("INSERT INTO nowhere (id) VALUES (?)", [(1,)])


def test_empty_batch_is_a_noop_on_plain_backends():
    conn = repro.connect(encrypted=False, backend="sqlite")
    conn.execute("CREATE TABLE items (id int)")
    cursor = conn.cursor()
    cursor.executemany("INSERT INTO items (id) VALUES (?)", [])
    assert cursor.rowcount == 0
    cursor.executemany("INSERT INTO nowhere (id) VALUES (?)", [])
    assert cursor.rowcount == 0
    assert conn.execute("SELECT COUNT(*) FROM items").fetchone()[0] == 0


def test_batch_insert_visible_inside_open_transaction(conn):
    rows = [(i, f"item {i}", i * 2) for i in range(1, 6)]
    conn.execute("BEGIN")
    conn.executemany("INSERT INTO items (id, label, qty) VALUES (?, ?, ?)", rows)
    # Visible to the same connection before COMMIT.
    assert _count(conn) == 5
    assert conn.execute(
        "SELECT label FROM items WHERE id = ?", (3,)
    ).fetchall() == [("item 3",)]
    conn.commit()
    assert _count(conn) == 5


def test_batch_insert_rolls_back_atomically(conn):
    conn.executemany(
        "INSERT INTO items (id, label, qty) VALUES (?, ?, ?)",
        [(1, "keep", 1)],
    )
    conn.execute("BEGIN")
    conn.executemany(
        "INSERT INTO items (id, label, qty) VALUES (?, ?, ?)",
        [(i, f"txn {i}", i) for i in range(10, 15)],
    )
    assert _count(conn) == 6
    conn.rollback()
    assert _count(conn) == 1
    assert conn.execute("SELECT id FROM items").fetchall() == [(1,)]
    # Rows inserted after the rollback land in a consistent table.
    conn.executemany(
        "INSERT INTO items (id, label, qty) VALUES (?, ?, ?)",
        [(2, "after", 2)],
    )
    assert sorted(conn.execute("SELECT id FROM items").fetchall()) == [(1,), (2,)]


def test_batched_update_and_delete_shapes(conn):
    conn.executemany(
        "INSERT INTO items (id, label, qty) VALUES (?, ?, ?)",
        [(i, f"item {i}", 100) for i in range(1, 6)],
    )
    # Constant slots (WHERE id = ?) and hom_delta slots (qty = qty + ?).
    assert conn.executemany(
        "UPDATE items SET qty = qty + ? WHERE id = ?",
        [(5, 1), (7, 2), (-1, 3)],
    ).rowcount == 3
    assert conn.execute(
        "SELECT qty FROM items WHERE id IN (?, ?, ?) ORDER BY id", (1, 2, 3)
    ).fetchall() == [(105,), (107,), (99,)]
    assert conn.executemany(
        "DELETE FROM items WHERE id = ?", [(4,), (5,)]
    ).rowcount == 2
    assert _count(conn) == 3


def test_batch_statistics_recorded(conn):
    stats = conn.proxy.stats
    conn.executemany(
        "INSERT INTO items (id, label, qty) VALUES (?, ?, ?)",
        [(i, "x", i) for i in range(1, 8)],
    )
    assert stats.batched_statements == 1
    assert stats.batched_rows == 7
    assert stats.queries_processed >= 7
    cache = stats.cache_stats()
    assert cache.det_misses > 0
    # Repeated values within the batch hit the Eq memo.
    assert cache.det_hits > 0
    stats.reset()
    assert stats.batched_rows == 0
    assert stats.cache_stats().det_hits == 0
    # Entries survive a counter reset; a second identical batch now hits.
    conn.executemany(
        "INSERT INTO items (id, label, qty) VALUES (?, ?, ?)",
        [(i, "x", i) for i in range(10, 17)],
    )
    assert stats.cache_stats().det_hits > 0

"""The PEP 249 surface: connections, cursors, transactions, exceptions."""

import pytest

import repro
from repro.api import (
    BackendAdapter,
    Connection,
    InMemoryBackend,
    InterfaceError,
    NotSupportedError,
    ProgrammingError,
    apilevel,
    paramstyle,
)
from repro.errors import ReproError
from repro.sql.engine import Database


@pytest.fixture()
def conn(paillier_keypair):
    from repro.crypto.keys import MasterKey

    connection = repro.connect(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("api-test"),
    )
    cur = connection.cursor()
    cur.execute("CREATE TABLE emp (id int, name varchar(50), salary int)")
    cur.executemany(
        "INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)",
        [(1, "Alice", 70000), (2, "Bob", 50000), (3, "Carol", 90000)],
    )
    return connection


def test_module_globals():
    assert apilevel == "2.0"
    assert paramstyle == "qmark"
    assert repro.paramstyle == "qmark"


def test_cursor_fetch_interface(conn):
    cur = conn.cursor()
    cur.execute("SELECT id, name FROM emp WHERE salary > ? ORDER BY salary DESC", (60000,))
    assert [d[0] for d in cur.description] == ["id", "name"]
    assert cur.rowcount == 2
    assert cur.fetchone() == (3, "Carol")
    assert cur.fetchmany(5) == [(1, "Alice")]
    assert cur.fetchone() is None
    cur.execute("SELECT id FROM emp WHERE id = ?", (2,))
    assert cur.fetchall() == [(2,)]
    assert cur.fetchall() == []


def test_cursor_iteration_and_arraysize(conn):
    cur = conn.cursor()
    cur.execute("SELECT id FROM emp ORDER BY id")
    assert list(cur) == [(1,), (2,), (3,)]
    cur.execute("SELECT id FROM emp ORDER BY id")
    cur.arraysize = 2
    assert cur.fetchmany() == [(1,), (2,)]


def test_non_select_has_no_description(conn):
    cur = conn.cursor()
    cur.execute("UPDATE emp SET salary = ? WHERE id = ?", (55000, 2))
    assert cur.description is None
    assert cur.rowcount == 1


def test_connection_execute_shortcut(conn):
    rows = conn.execute("SELECT name FROM emp WHERE id = ?", (1,)).fetchall()
    assert rows == [("Alice",)]


def test_context_manager_commits(conn):
    with conn:
        conn.execute("INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)", (4, "Dan", 1))
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 4


def test_context_manager_rolls_back_on_error(conn):
    with pytest.raises(RuntimeError):
        with conn:
            conn.execute("INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)", (5, "Eve", 2))
            raise RuntimeError("boom")
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 3


def test_nested_with_blocks_commit_once(conn):
    with conn:
        with conn:  # inner scope must not steal the outer's commit duty
            conn.execute("INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)", (4, "Dan", 1))
        conn.execute("INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)", (5, "Eve", 2))
    # The outer scope committed: the transaction is closed and the data final.
    assert not conn.backend.transactions.in_transaction
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 5


def test_nested_with_rolls_back_from_outer_error(conn):
    with pytest.raises(RuntimeError):
        with conn:
            with conn:
                conn.execute("INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)", (6, "Fay", 3))
            raise RuntimeError("outer boom")
    assert not conn.backend.transactions.in_transaction
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 3


def test_rollback_rewinds_join_adjustments(conn):
    conn.execute("CREATE TABLE dept (eid int, dname varchar(20))")
    conn.executemany(
        "INSERT INTO dept (eid, dname) VALUES (?, ?)", [(1, "sales"), (3, "eng")]
    )
    join_sql = "SELECT name, dname FROM emp JOIN dept ON id = eid ORDER BY name"
    with pytest.raises(RuntimeError):
        with conn:
            # First join re-keys JOIN-ADJ inside the transaction...
            assert conn.execute(join_sql).fetchall() == [("Alice", "sales"), ("Carol", "eng")]
            raise RuntimeError("abort")
    # ...the rollback reverted the server-side re-key UPDATE, so the proxy's
    # join bookkeeping must have rewound too or this join silently misses.
    assert conn.execute(join_sql).fetchall() == [("Alice", "sales"), ("Carol", "eng")]


def test_explicit_commit_rollback(conn):
    conn.begin()
    conn.execute("DELETE FROM emp WHERE id = ?", (1,))
    conn.rollback()
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 3
    conn.begin()
    conn.execute("DELETE FROM emp WHERE id = ?", (1,))
    conn.commit()
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 2


def test_closed_connection_and_cursor_raise(conn):
    cur = conn.cursor()
    cur.close()
    with pytest.raises(InterfaceError):
        cur.execute("SELECT 1")
    conn.close()
    assert conn.closed
    with pytest.raises(InterfaceError):
        conn.cursor()
    conn.close()  # idempotent


def test_close_rolls_back_open_transaction(paillier_keypair):
    conn = repro.connect(paillier=paillier_keypair)
    conn.execute("CREATE TABLE t (a int)")
    backend = conn.backend
    conn.begin()
    conn.execute("INSERT INTO t (a) VALUES (?)", (1,))
    conn.close()
    assert not backend.transactions.in_transaction


def test_error_mapping(conn):
    cur = conn.cursor()
    with pytest.raises(ProgrammingError) as excinfo:
        cur.execute("SELEC nonsense")
    assert isinstance(excinfo.value, ReproError)  # layered onto repro.errors
    with pytest.raises(ProgrammingError):
        cur.execute("SELECT a FROM missing_table")
    with pytest.raises(NotSupportedError):
        cur.execute("SELECT salary FROM emp WHERE salary * 2 = 10")
    # PEP 249 classes are exposed on the connection object too.
    assert conn.ProgrammingError is ProgrammingError


def test_parameter_count_mismatch(conn):
    with pytest.raises(ProgrammingError):
        conn.execute("SELECT id FROM emp WHERE id = ?", (1, 2))
    with pytest.raises(ProgrammingError):
        conn.execute("SELECT id FROM emp WHERE id = ?")


def test_unencrypted_connection_round_trip():
    conn = repro.connect(encrypted=False)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a int, b varchar(20))")
    cur.executemany("INSERT INTO t (a, b) VALUES (?, ?)", [(1, "x"), (2, "y' z")])
    cur.execute("SELECT b FROM t WHERE a = ?", (2,))
    assert cur.fetchall() == [("y' z",)]
    with pytest.raises(InterfaceError):
        repro.connect(encrypted=False, paillier_bits=512)


def test_backend_adapter_protocol_and_shared_database(paillier_keypair):
    db = Database()
    backend = InMemoryBackend(db)
    assert isinstance(backend, BackendAdapter)
    conn = repro.connect(db, paillier=paillier_keypair, anonymize_names=False)
    conn.execute("CREATE TABLE t (a int)")
    conn.execute("INSERT INTO t (a) VALUES (?)", (7,))
    # The proxy created its (non-anonymised) table inside the shared engine.
    assert db.has_table("t")


def test_connection_wraps_existing_proxy(make_proxy):
    proxy = make_proxy()
    proxy.execute("CREATE TABLE t (a int)")
    conn = Connection(proxy)
    assert conn.proxy is proxy
    conn.execute("INSERT INTO t (a) VALUES (?)", (3,))
    assert conn.execute("SELECT a FROM t").fetchall() == [(3,)]


def test_legacy_proxy_execute_shim(conn):
    """CryptDBProxy.execute(sql) keeps working for un-migrated callers."""
    proxy = conn.proxy
    result = proxy.execute("SELECT name FROM emp WHERE id = 1")
    assert result.rows == [("Alice",)]
    result = proxy.execute("SELECT name FROM emp WHERE id = ?", (2,))
    assert result.rows == [("Bob",)]

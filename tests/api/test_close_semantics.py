"""Connection.close(): idempotent, leak-free, and safe after peer death."""

from __future__ import annotations

import pytest

from repro.api import exceptions
from repro.api.connection import connect
from repro.server.loopback import LoopbackServer


def test_double_close_is_a_noop():
    conn = connect()
    conn.close()
    conn.close()
    assert conn.closed


def test_use_after_close_raises_interface_error():
    conn = connect()
    conn.close()
    with pytest.raises(exceptions.InterfaceError, match="closed"):
        conn.cursor()
    with pytest.raises(exceptions.InterfaceError, match="closed"):
        conn.execute("SELECT 1 FROM t")
    with pytest.raises(exceptions.InterfaceError, match="closed"):
        conn.begin()


def test_close_rolls_back_open_transaction():
    backend_holder = connect()
    cur = backend_holder.cursor()
    cur.execute("CREATE TABLE c (id int)")
    backend_holder.begin()
    cur.execute("INSERT INTO c (id) VALUES (1)")
    assert backend_holder._in_transaction()
    backend_holder.close()
    assert not backend_holder._in_transaction()


def test_close_survives_rollback_failure_and_still_releases(monkeypatch):
    """A rollback that blows up must not leak the proxy's resources."""
    conn = connect()
    conn.execute("CREATE TABLE rb (id int)")
    conn.begin()
    conn.execute("INSERT INTO rb (id) VALUES (1)")

    proxy_closed = []
    original_close = conn.proxy.close
    monkeypatch.setattr(
        conn.proxy, "close", lambda: (proxy_closed.append(True), original_close())[1]
    )

    def exploding_execute(sql, params=None):
        raise exceptions.OperationalError("backend vanished mid-rollback")

    monkeypatch.setattr(conn.target, "execute", exploding_execute)
    conn.close()  # must not raise
    assert conn.closed
    assert proxy_closed == [True]


def test_remote_close_is_idempotent(paillier_keypair):
    from repro.crypto.keys import MasterKey

    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("close-idem"),
        hom_precompute=8,
    )
    try:
        conn = connect(url=server.url)
        conn.execute("CREATE TABLE ri (id int)")
        conn.close()
        conn.close()
        with pytest.raises(exceptions.InterfaceError):
            conn.cursor()
    finally:
        server.stop()


def test_remote_use_after_server_death_raises_interface_error(paillier_keypair):
    from repro.crypto.keys import MasterKey

    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("close-death"),
        hom_precompute=8,
    )
    conn = connect(url=server.url)
    cur = conn.cursor()
    cur.execute("CREATE TABLE dead (id int)")
    server.stop()  # the server dies under the connection
    with pytest.raises(exceptions.InterfaceError):
        cur.execute("SELECT * FROM dead")
    with pytest.raises(exceptions.InterfaceError):
        cur.execute("SELECT * FROM dead")  # stays dead, stays InterfaceError
    conn.close()  # and close after death neither raises nor hangs
    conn.close()
    assert conn.closed


def test_remote_close_with_open_transaction_after_server_death(paillier_keypair):
    """The hardening case: rollback fails against a dead peer, close survives."""
    from repro.crypto.keys import MasterKey

    server = LoopbackServer(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("close-txn-death"),
        hom_precompute=8,
    )
    conn = connect(url=server.url)
    conn.execute("CREATE TABLE txd (id int)")
    conn.begin()
    conn.execute("INSERT INTO txd (id) VALUES (1)")
    assert conn._in_transaction()
    server.stop()
    conn.close()  # rollback against a dead server is swallowed
    assert conn.closed


def test_plain_backend_close_releases_sqlite_handle():
    pytest.importorskip("sqlite3")
    from repro.errors import SQLExecutionError

    conn = connect(encrypted=False, backend="sqlite")
    conn.execute("CREATE TABLE s (id int)")
    conn.close()
    # The underlying sqlite3 handle really was released with the connection.
    with pytest.raises(SQLExecutionError, match="closed database"):
        conn.backend.execute("SELECT * FROM s")

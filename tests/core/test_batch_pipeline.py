"""Column-batch encryption/decryption equivalence and cache correctness.

The columnar pipeline must be observationally identical to the scalar path:
batch-encrypted cells decrypt through the scalar decryptor (and vice versa),
deterministic layers match byte-for-byte, and the Eq memo is invalidated
when a JOIN-ADJ re-keying changes what the column stores.
"""

import pytest

from repro.core.encryptor import Encryptor
from repro.core.joins import JoinManager
from repro.core.onion import EncryptionScheme, Onion
from repro.core.schema import ProxySchema
from repro.crypto.keys import KeyManager, MasterKey
from repro.sql.parser import parse_sql


@pytest.fixture()
def setup(paillier_keypair):
    schema = ProxySchema()
    create = parse_sql(
        "CREATE TABLE t (n INT, s VARCHAR(50), txt TEXT, price DECIMAL(8,2))"
    )
    schema.add_table("t", create.columns)
    master = MasterKey.from_passphrase("batch-encryptor-test")
    joins = JoinManager(master.material)
    for name in ("n", "s", "txt", "price"):
        joins.register_column("t", name)
    encryptor = Encryptor(KeyManager(master), joins, paillier_keypair)
    return schema, encryptor


VALUES = {
    "n": [7, -3, 7, None, 0, 7],
    "s": ["alpha", "beta", "alpha", None, "", "alpha"],
    "price": [1.25, -9.5, 1.25, None, 0.0, 1.25],
}


@pytest.mark.parametrize("column_name", ["n", "s", "price"])
def test_batch_cells_decrypt_through_scalar_path(setup, column_name):
    schema, encryptor = setup
    column = schema.column("t", column_name)
    values = VALUES[column_name]
    parts = encryptor.encrypt_column_values(column, values)
    assert set(parts) == {s.anon_name for s in column.onions.values()} | {column.iv_column}
    ivs = parts[column.iv_column]
    for onion, state in column.onions.items():
        if onion is Onion.SEARCH:
            continue
        if onion is Onion.ORD and column.kind != "integer":
            # Text Ord onions encode a 4-byte prefix, not the full value;
            # batch/scalar equivalence for them is covered separately.
            continue
        cells = parts[state.anon_name]
        for value, cell, iv in zip(values, cells, ivs):
            if value is None:
                assert cell is None
                continue
            decrypted = encryptor.decrypt_value(column, onion, state.level, cell, iv)
            if isinstance(value, float):
                assert decrypted == pytest.approx(value)
            else:
                assert decrypted == value


@pytest.mark.parametrize("column_name", ["n", "s", "price"])
def test_decrypt_column_matches_scalar_decrypt(setup, column_name):
    schema, encryptor = setup
    column = schema.column("t", column_name)
    values = VALUES[column_name]
    parts = encryptor.encrypt_column_values(column, values)
    ivs = parts[column.iv_column]
    state = column.onion_state(Onion.EQ)
    cells = parts[state.anon_name]
    batch = encryptor.decrypt_column(column, Onion.EQ, state.level, cells, ivs)
    scalar = [
        None if c is None else encryptor.decrypt_value(column, Onion.EQ, state.level, c, iv)
        for c, iv in zip(cells, ivs)
    ]
    assert batch == scalar
    ord_state = column.onion_state(Onion.ORD)
    ord_cells = parts[ord_state.anon_name]
    assert encryptor.decrypt_column(column, Onion.ORD, ord_state.level, ord_cells, ivs) == [
        None if c is None else encryptor.decrypt_value(column, Onion.ORD, ord_state.level, c, iv)
        for c, iv in zip(ord_cells, ivs)
    ]


def test_batch_constants_match_scalar_constants(setup):
    schema, encryptor = setup
    column = schema.column("t", "s")
    values = ["x", "y", "x", None]
    batch = encryptor.encrypt_constants_many(
        column, Onion.EQ, EncryptionScheme.DET, values
    )
    for value, cell in zip(values, batch):
        assert cell == encryptor.encrypt_constant(
            column, Onion.EQ, EncryptionScheme.DET, value
        )
    # Repeated values share one deterministic ciphertext.
    assert batch[0] == batch[2]


def test_eq_memo_hits_and_reset(setup):
    schema, encryptor = setup
    column = schema.column("t", "s")
    encryptor.encrypt_column_values(column, ["a", "b", "a", "a"])
    stats = encryptor.cache.statistics()
    assert stats.det_misses == 2
    assert stats.det_hits == 2
    assert stats.det_entries >= 2
    encryptor.cache.reset_counters()
    stats = encryptor.cache.statistics()
    assert stats.det_hits == 0 and stats.det_misses == 0
    assert stats.det_entries >= 2  # entries survive a counter reset


def test_eq_memo_survives_mid_batch_failure(setup, monkeypatch):
    """A batch that dies in the JOIN-ADJ hash must not poison the memo."""
    from repro.crypto.join_adj import JoinAdj

    schema, encryptor = setup
    column = schema.column("t", "s")

    def explode(self, values):
        raise RuntimeError("interrupted mid-batch")

    with monkeypatch.context() as patched:
        patched.setattr(JoinAdj, "hash_values", explode)
        with pytest.raises(RuntimeError):
            encryptor.encrypt_column_values(column, ["x", "y"])
    # The failed batch left no half-built entries behind: the same values
    # encrypt fine afterwards and agree with the scalar path.
    retry = encryptor.encrypt_constants_many(
        column, Onion.EQ, EncryptionScheme.DET, ["x", "y"]
    )
    expected = [
        encryptor.encrypt_to_level(column, Onion.EQ, EncryptionScheme.DET, value)
        for value in ("x", "y")
    ]
    assert retry == expected


def test_eq_memo_invalidated_by_join_rekey(setup):
    schema, encryptor = setup
    column_s = schema.column("t", "s")
    column_txt = schema.column("t", "txt")
    before = encryptor.encrypt_constants_many(
        column_txt, Onion.EQ, EncryptionScheme.JOIN, ["shared"]
    )[0]
    # Re-key txt so it becomes joinable with s (the group base is the
    # lexicographically first column, so txt's scalar changes).
    adjustments = encryptor.joins.ensure_joinable(("t", "s"), ("t", "txt"))
    assert adjustments, "expected txt to be re-keyed"
    for adjustment in adjustments:
        encryptor.cache.invalidate_eq(adjustment.table, adjustment.column)
    after = encryptor.encrypt_constants_many(
        column_txt, Onion.EQ, EncryptionScheme.JOIN, ["shared"]
    )[0]
    assert after != before  # stale memo would have replayed the old key
    # And the fresh ciphertext matches the scalar path's.
    assert after == encryptor.encrypt_constant(
        column_txt, Onion.EQ, EncryptionScheme.JOIN, "shared"
    )
    # The JOIN-ADJ prefix now matches s's encryption of the same value.
    other = encryptor.encrypt_constant(
        column_s, Onion.EQ, EncryptionScheme.JOIN, "shared"
    )
    size = encryptor.adj_prefix_size()
    assert after[:size] == other[:size]


def test_ablation_reports_no_cache_activity(paillier_keypair):
    """With the ciphertext cache off (Proxy*), counters must stay at zero."""
    schema = ProxySchema()
    schema.add_table("t", parse_sql("CREATE TABLE t (n INT, s VARCHAR(20))").columns)
    master = MasterKey.from_passphrase("ablation-test")
    joins = JoinManager(master.material)
    joins.register_column("t", "n")
    joins.register_column("t", "s")
    encryptor = Encryptor(
        KeyManager(master), joins, paillier_keypair, use_ope_cache=False
    )
    column = schema.column("t", "s")
    encryptor.encrypt_column_values(column, ["a", "a", "b", "a"])
    stats = encryptor.cache.statistics()
    assert stats.det_hits == 0 and stats.det_misses == 0
    assert stats.ope_hits == 0 and stats.ope_misses == 0
    assert stats.search_hits == 0 and stats.search_misses == 0
    assert stats.det_entries == 0 and stats.ope_entries == 0


def test_hom_deltas_decrypt(setup):
    schema, encryptor = setup
    column = schema.column("t", "n")
    deltas = [5, -2, 0]
    for delta, ct in zip(deltas, encryptor.hom_delta_many(column, deltas)):
        assert encryptor.decrypt_value(column, Onion.ADD, EncryptionScheme.HOM, ct) == delta

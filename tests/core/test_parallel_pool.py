"""The crypto worker pool: equivalence, counter merging, lifecycle.

Parallel offload is a pure throughput optimisation: every deterministic
kernel must produce byte-identical ciphertexts to the serial path (same
derived keys, same IVs), the probabilistic ones must decrypt identically,
and the per-worker cache counters must merge into ``cache_stats()`` without
double-counting across pool restarts or surviving ``stats.reset()``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.proxy import CryptDBProxy
from repro.crypto.keys import MasterKey
from repro.parallel import CryptoWorkerPool, ParallelConfig
from repro.parallel.jobs import HomDecryptJob, HomEncryptJob
from repro.sql.engine import Database

#: Aggressive config so even small test batches exercise the pool.
SMALL_BATCHES = ParallelConfig(workers=2, chunk_threshold=4)


@pytest.fixture()
def parallel_proxy(paillier_keypair):
    proxy = CryptDBProxy(
        db=Database(),
        master_key=MasterKey.from_passphrase("parallel-tests"),
        paillier=paillier_keypair,
        parallelism=SMALL_BATCHES,
        hom_precompute=4,
    )
    yield proxy
    proxy.close()


@pytest.fixture()
def serial_proxy(paillier_keypair):
    return CryptDBProxy(
        db=Database(),
        master_key=MasterKey.from_passphrase("parallel-tests"),
        paillier=paillier_keypair,
        hom_precompute=4,
    )


def _load(proxy: CryptDBProxy, rows: int = 40) -> None:
    proxy.execute("CREATE TABLE t (id INT, name VARCHAR(30), qty INT)")
    proxy.executemany(
        "INSERT INTO t (id, name, qty) VALUES (?, ?, ?)",
        [(i, f"name-{i % 9}", 10 * (i % 5)) for i in range(rows)],
    )


# ---------------------------------------------------------------------------
# parallel-vs-serial equivalence
# ---------------------------------------------------------------------------
def test_parallel_and_serial_proxies_agree(parallel_proxy, serial_proxy):
    """Same master key, same statements: identical decrypted results."""
    for proxy in (parallel_proxy, serial_proxy):
        _load(proxy)
    queries = [
        ("SELECT id, name, qty FROM t WHERE name = ?", ("name-3",)),
        ("SELECT id FROM t WHERE qty > ? ORDER BY id ASC", (20,)),
        ("SELECT COUNT(*), SUM(qty) FROM t", ()),
        ("SELECT name, SUM(qty) FROM t GROUP BY name ORDER BY name ASC", ()),
    ]
    for sql, params in queries:
        parallel_rows = parallel_proxy.execute(sql, params).rows
        serial_rows = serial_proxy.execute(sql, params).rows
        assert parallel_rows == serial_rows, sql
    # HOM increments stay exact through worker-side Paillier encryption.
    for proxy in (parallel_proxy, serial_proxy):
        proxy.execute("UPDATE t SET qty = qty + ?", (7,))
    assert (
        parallel_proxy.execute("SELECT SUM(qty) FROM t").rows
        == serial_proxy.execute("SELECT SUM(qty) FROM t").rows
    )
    assert parallel_proxy.stats.cache_stats().parallel_jobs > 0


def test_deterministic_layers_are_byte_identical(parallel_proxy, serial_proxy):
    """Offloaded Eq layers equal the serial ciphertexts bit for bit."""
    for proxy in (parallel_proxy, serial_proxy):
        proxy.execute("CREATE TABLE d (v VARCHAR(20))")
    column_p = parallel_proxy.schema.column("d", "v")
    column_s = serial_proxy.schema.column("d", "v")
    values = [f"value-{i % 11}" for i in range(48)]
    from repro.core.onion import EncryptionScheme, Onion

    parallel_cts = parallel_proxy.encryptor._eq_deterministic_many(
        column_p, values, EncryptionScheme.DET
    )
    serial_cts = serial_proxy.encryptor._eq_deterministic_many(
        column_s, values, EncryptionScheme.DET
    )
    assert parallel_cts == serial_cts
    # And the decrypt path (offloaded on the parallel side) round-trips.
    decoded = parallel_proxy.encryptor.decrypt_column(
        column_p, Onion.EQ, EncryptionScheme.DET, parallel_cts
    )
    assert decoded == values


def test_hom_jobs_roundtrip(parallel_proxy):
    """Worker-side Paillier encryption decrypts correctly (and vice versa)."""
    pool = parallel_proxy.pool
    values = list(range(64))
    ciphertexts = pool.scatter(values, lambda chunk: HomEncryptJob(values=chunk))
    assert [parallel_proxy.paillier.decrypt(ct) for ct in ciphertexts] == values
    plains = pool.scatter(ciphertexts, lambda chunk: HomDecryptJob(ciphertexts=chunk))
    assert plains == values


# ---------------------------------------------------------------------------
# serial fallback semantics
# ---------------------------------------------------------------------------
def test_workers_zero_has_no_pool(serial_proxy):
    assert serial_proxy.pool is None
    _load(serial_proxy)
    stats = serial_proxy.stats.cache_stats()
    assert stats.parallel_jobs == 0
    assert stats.worker_det_hits == 0 and stats.worker_det_misses == 0


def test_small_batches_stay_serial(paillier_keypair):
    proxy = CryptDBProxy(
        db=Database(),
        paillier=paillier_keypair,
        parallelism=ParallelConfig(workers=2, chunk_threshold=10_000),
        hom_precompute=0,
    )
    try:
        _load(proxy)
        assert proxy.execute("SELECT COUNT(*) FROM t").rows == [(40,)]
        assert proxy.stats.cache_stats().parallel_jobs == 0
    finally:
        proxy.close()


def test_broken_pool_falls_back_to_serial(parallel_proxy):
    _load(parallel_proxy, rows=20)
    parallel_proxy.pool.close()
    parallel_proxy.executemany(
        "INSERT INTO t (id, name, qty) VALUES (?, ?, ?)",
        [(100 + i, f"late-{i % 3}", i) for i in range(20)],
    )
    rows = parallel_proxy.execute("SELECT COUNT(*) FROM t").rows
    assert rows == [(40,)]


# ---------------------------------------------------------------------------
# counter merging (regression: reset + restart)
# ---------------------------------------------------------------------------
def test_worker_counters_merge_and_reset(parallel_proxy):
    _load(parallel_proxy)
    stats = parallel_proxy.stats.cache_stats()
    assert stats.parallel_jobs > 0
    assert stats.worker_det_misses > 0
    assert stats.det_hits_total == stats.det_hits + stats.worker_det_hits
    # reset() zeroes the per-worker counters with everything else.
    parallel_proxy.stats.reset()
    stats = parallel_proxy.stats.cache_stats()
    assert stats.parallel_jobs == 0
    assert stats.worker_det_hits == 0 and stats.worker_det_misses == 0
    assert stats.det_hits == 0 and stats.det_misses == 0


def test_pool_restart_does_not_double_count(parallel_proxy):
    """Counters accumulate as deltas, so a restart cannot replay totals."""
    _load(parallel_proxy)
    before = parallel_proxy.stats.cache_stats()
    parallel_proxy.pool.restart()
    middle = parallel_proxy.stats.cache_stats()
    assert middle.worker_det_hits == before.worker_det_hits
    assert middle.worker_det_misses == before.worker_det_misses
    assert middle.parallel_jobs == before.parallel_jobs
    # More work after the restart adds only the new deltas (fresh worker
    # memos: the re-sent values count as worker misses, not replayed totals).
    parallel_proxy.executemany(
        "INSERT INTO t (id, name, qty) VALUES (?, ?, ?)",
        [(200 + i, f"name-{i % 9}", i) for i in range(16)],
    )
    after = parallel_proxy.stats.cache_stats()
    assert after.parallel_jobs > middle.parallel_jobs
    assert after.worker_det_misses >= middle.worker_det_misses
    assert parallel_proxy.execute("SELECT COUNT(*) FROM t").rows == [(56,)]


# ---------------------------------------------------------------------------
# asynchronous HOM pool refill
# ---------------------------------------------------------------------------
def test_hom_pool_async_refill(wait_until):
    # A private key pair: the session-scoped fixture's randomness pool is
    # shared across tests and may already sit far above the watermark.
    from repro.crypto.paillier import PaillierKeyPair

    proxy = CryptDBProxy(
        db=Database(),
        paillier=PaillierKeyPair.generate(256),
        parallelism=ParallelConfig(
            workers=2, chunk_threshold=4, hom_low_watermark=64, hom_refill_batch=32
        ),
        hom_precompute=2,
    )
    try:
        # Drain the (tiny) pre-computed pool through the scalar path;
        # dropping through the watermark must schedule a background refill
        # instead of blocking the inserts.
        proxy.execute("CREATE TABLE h (v INT)")
        for i in range(8):
            proxy.execute("INSERT INTO h (v) VALUES (?)", (i,))
        proxy.pool.drain_async()
        wait_until(
            lambda: proxy.stats.cache_stats().hom_pool_async_refills > 0,
            message="background HOM refill to land",
        )
        stats = proxy.stats.cache_stats()
        assert stats.hom_pool_async_refills >= 1
        assert proxy.paillier.randomness_pool_size > 0
        # The refilled factors must be usable: SUM still decrypts exactly.
        assert proxy.execute("SELECT SUM(v) FROM h").rows == [(28,)]
        # reset() zeroes the refill counter too.
        proxy.stats.reset()
        assert proxy.stats.cache_stats().hom_pool_async_refills == 0
    finally:
        proxy.close()


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------
def test_connection_close_terminates_pool(paillier_keypair):
    import repro

    conn = repro.connect(paillier=paillier_keypair, parallelism=SMALL_BATCHES)
    proxy = conn.proxy
    assert proxy.pool is not None
    conn.close()
    assert proxy.pool is None
    assert proxy.paillier.refill_hook is None


def test_proxy_close_is_idempotent_and_leaves_proxy_usable(parallel_proxy):
    _load(parallel_proxy, rows=8)
    parallel_proxy.close()
    parallel_proxy.close()
    assert parallel_proxy.pool is None
    # Serial execution continues to work after the pool is gone.
    assert parallel_proxy.execute("SELECT COUNT(*) FROM t").rows == [(8,)]


def test_workers_shorthand_builds_config():
    pool_config = ParallelConfig(workers=3)
    assert pool_config.enabled
    assert not ParallelConfig().enabled
    with pytest.raises(ValueError):
        CryptoWorkerPool(ParallelConfig(workers=0), None)


def test_chunk_threshold_auto_sizes_from_cpu_count(monkeypatch):
    """On a single-core box the sync offload path must never engage.

    The Figure-10 pool_offload section regressed to ~2x *slower* than
    serial when a 2-worker pool ran on 1 CPU: the same crypto on the same
    lone core, plus IPC.  ``chunk_threshold=None`` (the default) now
    resolves against ``os.cpu_count()`` so that configuration is inert.
    """
    import sys as _sys

    import repro.parallel.pool as pool_mod

    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
    assert ParallelConfig(workers=2).resolved_chunk_threshold() == _sys.maxsize

    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 8)
    assert (
        ParallelConfig(workers=2).resolved_chunk_threshold()
        == ParallelConfig.AUTO_CHUNK_THRESHOLD
    )

    # Explicit values are always honoured (the conformance lanes rely on a
    # tiny threshold so generated batches actually offload).
    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
    assert ParallelConfig(workers=2, chunk_threshold=4).resolved_chunk_threshold() == 4
    assert ParallelConfig(chunk_threshold=0).resolved_chunk_threshold() == 1


def test_auto_threshold_pool_stays_serial_on_one_cpu(monkeypatch, paillier_keypair):
    import repro.parallel.pool as pool_mod

    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
    pool = CryptoWorkerPool(ParallelConfig(workers=2), paillier_keypair)
    try:
        # No batch is ever big enough for sync offload, but the pool itself
        # is alive for asynchronous background HOM refills.
        assert not pool.usable(10**9)
        assert not pool.broken and not pool.closed
    finally:
        pool.close()

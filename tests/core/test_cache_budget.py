"""Byte-budgeted cache eviction and the measured ``estimated_bytes``.

The paper sizes its OPE cache in megabytes (§8.4.1); our cache now reports
a *measured* footprint (``sys.getsizeof`` walk over every memo container
and the HOM randomness pool) and, when the proxy is constructed with
``cache_budget_bytes``, evicts least-recently-used memo units after every
statement until the measurement fits.  Accuracy is pinned against an
independent walk over the raw containers; eviction is pinned by counters
and by the footprint staying at (or under) the configured ceiling.
"""

import sys

from repro.core.cache import CryptoCache, deep_size


def _walk(obj, seen):
    """Independent getsizeof walk (dict/list/tuple/set), one count per object."""
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    total = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            total += _walk(key, seen) + _walk(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            total += _walk(item, seen)
    return total


def _true_bytes(proxy):
    """Ground truth: walk every live cache container the proxy holds."""
    cache = proxy.cache
    seen: set = set()
    total = 0
    for memos in (cache._eq_encrypt_memos, cache._eq_decrypt_memos):
        for memo in memos.values():
            total += _walk(memo, seen)
    for scheme in cache._ope_schemes + cache._search_schemes:
        for container in scheme.cache_objects():
            total += _walk(container, seen)
    pool = proxy.paillier._randomness_pool
    total += sys.getsizeof(pool) + sum(sys.getsizeof(f) for f in pool)
    return total


def _seeded_workload(proxy, rows=40):
    proxy.execute(
        "CREATE TABLE w (id INT, qty INT, name VARCHAR(30), notes TEXT)"
    )
    proxy.executemany(
        "INSERT INTO w (id, qty, name, notes) VALUES (?, ?, ?, ?)",
        [(i, i % 7, f"name-{i % 11}", f"note words {i % 5}") for i in range(rows)],
    )
    proxy.execute("SELECT * FROM w WHERE qty > 2")
    proxy.execute("SELECT id, name FROM w WHERE name = 'name-3'")
    proxy.execute("SELECT id FROM w WHERE notes LIKE '%words%'")
    proxy.execute("SELECT id, qty FROM w ORDER BY qty")


def test_estimated_bytes_within_10_percent_of_truth(make_proxy):
    proxy = make_proxy(hom_precompute=16)
    _seeded_workload(proxy)
    estimated = proxy.stats.cache_stats().estimated_bytes
    truth = _true_bytes(proxy)
    assert truth > 0
    assert abs(estimated - truth) <= truth * 0.10, (estimated, truth)


def test_estimated_bytes_tracks_growth(make_proxy):
    proxy = make_proxy(hom_precompute=0)
    proxy.execute("CREATE TABLE g (id INT, name VARCHAR(20))")
    before = proxy.stats.cache_stats().estimated_bytes
    proxy.executemany(
        "INSERT INTO g (id, name) VALUES (?, ?)",
        [(i, f"value-{i}") for i in range(50)],
    )
    after = proxy.stats.cache_stats().estimated_bytes
    assert after > before


def test_budget_evicts_and_counts(make_proxy):
    budget = 8 * 1024
    proxy = make_proxy(cache_budget_bytes=budget, hom_precompute=0)
    _seeded_workload(proxy, rows=120)
    stats = proxy.stats.cache_stats()
    assert stats.budget_bytes == budget
    assert stats.evictions > 0
    assert stats.evicted_bytes > 0
    assert stats.estimated_bytes <= budget


def test_no_budget_never_evicts(make_proxy):
    proxy = make_proxy(hom_precompute=0)
    _seeded_workload(proxy, rows=60)
    stats = proxy.stats.cache_stats()
    assert stats.evictions == 0
    assert stats.budget_bytes == 0


def test_hom_pool_trimmed_last(paillier_keypair, make_proxy):
    proxy = make_proxy(hom_precompute=0)
    proxy.cache.budget_bytes = 1  # everything must go
    proxy.cache.precompute_hom(8)
    _seeded_workload(proxy, rows=10)
    proxy.cache.enforce_budget()
    stats = proxy.stats.cache_stats()
    # Memos gone, and the pre-computed randomness was shed as well.
    assert stats.det_entries == 0
    assert stats.hom_pool_remaining == 0
    assert stats.evictions > 0


def test_eviction_keeps_answers_correct(make_proxy):
    tight = make_proxy(cache_budget_bytes=4 * 1024, hom_precompute=0)
    roomy = make_proxy(hom_precompute=0)
    for proxy in (tight, roomy):
        _seeded_workload(proxy, rows=80)
    for sql in (
        "SELECT id, qty, name FROM w ORDER BY id",
        "SELECT SUM(qty), AVG(qty) FROM w",
        "SELECT id FROM w WHERE name = 'name-7' ORDER BY id",
    ):
        assert tight.execute(sql).rows == roomy.execute(sql).rows
    assert tight.stats.cache_stats().evictions > 0


def test_deep_size_counts_shared_objects_once():
    shared = b"x" * 100
    container = {"a": shared, "b": shared}
    unshared = {"a": b"x" * 100, "b": b"y" * 100}
    assert deep_size(container) < deep_size(unshared)


def test_reset_counters_clears_eviction_totals(make_proxy):
    proxy = make_proxy(cache_budget_bytes=2 * 1024, hom_precompute=0)
    _seeded_workload(proxy)
    assert proxy.stats.cache_stats().evictions > 0
    proxy.stats.reset()
    stats = proxy.stats.cache_stats()
    assert stats.evictions == 0 and stats.evicted_bytes == 0


def test_lru_prefers_cold_memos(paillier_keypair):
    cache = CryptoCache(paillier_keypair, budget_bytes=None)
    cold = cache.eq_encrypt_memo("t", "cold")
    hot = cache.eq_encrypt_memo("t", "hot")
    for i in range(20):
        cold[b"c%d" % i] = (b"j" * 16, b"d" * 16)
        hot[b"h%d" % i] = (b"j" * 16, b"d" * 16)
    cache.eq_encrypt_memo("t", "cold")
    cache.eq_encrypt_memo("t", "hot")  # hot touched last
    cache.budget_bytes = cache.statistics().estimated_bytes - 1
    cache.enforce_budget()
    assert ("t", "cold") not in cache._eq_encrypt_memos
    assert ("t", "hot") in cache._eq_encrypt_memos
    assert cache.evictions == 1

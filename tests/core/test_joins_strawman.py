"""JoinManager transitivity groups and the strawman baseline."""

import pytest

from repro.core.joins import JoinManager
from repro.core.strawman import StrawmanProxy
from repro.errors import UnsupportedQueryError


def test_ensure_joinable_and_transitivity():
    manager = JoinManager(b"join-test-master")
    for column in [("a", "x"), ("b", "y"), ("c", "z"), ("d", "w")]:
        manager.register_column(*column)
    adjustments = manager.ensure_joinable(("a", "x"), ("b", "y"))
    assert len(adjustments) == 1
    assert manager.joinable(("a", "x"), ("b", "y"))
    # Joining b-c merges c into the a/b group; a and c become joinable too (§3.4).
    manager.ensure_joinable(("b", "y"), ("c", "z"))
    assert manager.joinable(("a", "x"), ("c", "z"))
    # d is in a different transitivity group.
    assert not manager.joinable(("a", "x"), ("d", "w"))
    assert len(manager.group_members("a", "x")) == 3


def test_adjustment_count_bounded_by_n_squared():
    manager = JoinManager(b"join-test-master")
    columns = [("t", f"c{i}") for i in range(6)]
    for column in columns:
        manager.register_column(*column)
    for left in columns:
        for right in columns:
            if left < right:
                manager.ensure_joinable(left, right)
    n = len(columns)
    assert manager.adjustments_performed <= n * (n - 1) // 2
    # After full merging, every pair is joinable with no further adjustments.
    before = manager.adjustments_performed
    manager.ensure_joinable(columns[0], columns[-1])
    assert manager.adjustments_performed == before


def test_repeated_joins_no_extra_adjustment():
    manager = JoinManager(b"join-test-master")
    manager.register_column("a", "x")
    manager.register_column("b", "y")
    manager.ensure_joinable(("a", "x"), ("b", "y"))
    assert manager.ensure_joinable(("a", "x"), ("b", "y")) == []


def test_strawman_basic_queries():
    strawman = StrawmanProxy()
    strawman.execute("CREATE TABLE t (a int, b varchar(10))")
    strawman.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'x')")
    assert strawman.execute("SELECT a FROM t WHERE b = 'x' ORDER BY a").rows == [(1,), (3,)]
    assert strawman.execute("SELECT SUM(a) FROM t").scalar() == 6
    assert strawman.execute("SELECT a, b FROM t WHERE a > 1 ORDER BY a").rows == [(2, "y"), (3, "x")]
    strawman.execute("UPDATE t SET b = 'z' WHERE a = 1")
    assert strawman.execute("SELECT b FROM t WHERE a = 1").rows == [("z",)]
    strawman.execute("DELETE FROM t WHERE a = 2")
    assert strawman.execute("SELECT COUNT(*) FROM t").scalar() == 2


def test_strawman_stores_only_rnd_ciphertext():
    strawman = StrawmanProxy()
    strawman.execute("CREATE TABLE t (a int, b varchar(10))")
    strawman.execute("INSERT INTO t (a, b) VALUES (1, 'secretvalue')")
    table = strawman.db.table(strawman.schema.table("t").anon_name)
    row = next(table.scan())[1]
    ciphertexts = [v for v in row.values() if isinstance(v, bytes)]
    assert ciphertexts and all(b"secretvalue" not in c for c in ciphertexts)
    # Identical plaintexts produce different ciphertexts (probabilistic RND).
    strawman.execute("INSERT INTO t (a, b) VALUES (1, 'secretvalue')")
    rows = [r for _, r in table.scan()]
    assert rows[0]["C2_data"] != rows[1]["C2_data"]


def test_strawman_limits():
    strawman = StrawmanProxy()
    strawman.execute("CREATE TABLE t (a int)")
    with pytest.raises(UnsupportedQueryError):
        strawman.execute("UPDATE t SET a = a + 1")

"""Packed HOM through the whole proxy pipeline (§8.4 ciphertext diet).

All INTEGER/DECIMAL columns of a table share packed Paillier ciphertexts
(one slot per column, one ciphertext per row per group of ``slots_for(n)``
columns).  These tests pin the end-to-end behaviours the codec tests can't
see: storage layout, NULL semantics through SUM/AVG (the PR 4
zero-rows->NULL contract), increments and absolute SETs on shared cells,
headroom chunking on real aggregates, and packed-vs-scalar equivalence on
randomized workloads.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.paillier import PackingConfig, PaillierKeyPair


def _rows(proxy, sql):
    return proxy.execute(sql).rows


def test_packing_on_by_default_and_groups_assigned(proxy):
    assert proxy.hom_packing is not None
    proxy.execute("CREATE TABLE g (a INT, b INT, c INT)")
    groups = proxy.schema.tables["g"].hom_groups
    assert groups and all(group.anon_name.endswith("_Add") for group in groups)
    slots = proxy.hom_packing.slots_for(proxy.paillier.public.n)
    assert all(len(group.members) <= slots for group in groups)
    # 3 HOM columns, but far fewer stored Add ciphertexts than columns.
    assert len(groups) == -(-3 // slots)


def test_small_modulus_disables_packing():
    from repro.core.proxy import CryptDBProxy
    from repro.crypto.keys import MasterKey

    proxy = CryptDBProxy(
        master_key=MasterKey.from_passphrase("tiny"),
        paillier=PaillierKeyPair.generate(64),
    )
    # A 64-bit modulus cannot hold one 97-bit slot; the proxy must fall
    # back to scalar HOM instead of corrupting values.
    assert proxy.hom_packing is None
    proxy.execute("CREATE TABLE t (v INT)")
    proxy.execute("INSERT INTO t (v) VALUES (5), (6)")
    assert _rows(proxy, "SELECT SUM(v) FROM t") == [(11,)]


def test_sum_zero_rows_is_null(proxy):
    proxy.execute("CREATE TABLE z (id INT, v INT)")
    assert _rows(proxy, "SELECT SUM(v), AVG(v) FROM z") == [(None, None)]
    proxy.execute("INSERT INTO z (id, v) VALUES (1, 5)")
    assert _rows(proxy, "SELECT SUM(v) FROM z WHERE id = 99") == [(None,)]


def test_sum_all_null_column_is_null(proxy):
    proxy.execute("CREATE TABLE an (id INT, v INT)")
    proxy.execute("INSERT INTO an (id, v) VALUES (1, NULL), (2, NULL)")
    assert _rows(proxy, "SELECT SUM(v), AVG(v), COUNT(v) FROM an") == [(None, None, 0)]


def test_sum_skips_null_members(proxy):
    proxy.execute("CREATE TABLE sn (id INT, v INT)")
    proxy.execute("INSERT INTO sn (id, v) VALUES (1, 10), (2, NULL), (3, -4)")
    assert _rows(proxy, "SELECT SUM(v), AVG(v) FROM sn") == [(6, 3.0)]


def test_increment_preserves_null_and_neighbours(proxy):
    proxy.execute("CREATE TABLE inc (id INT, a INT, b INT)")
    proxy.execute("INSERT INTO inc (id, a, b) VALUES (1, 10, NULL), (2, 20, 7)")
    proxy.execute("UPDATE inc SET b = b + 5")
    # SQL: NULL + 5 stays NULL; the packed neighbour slots are untouched.
    assert _rows(proxy, "SELECT id, a, b FROM inc ORDER BY id") == [
        (1, 10, None),
        (2, 20, 12),
    ]


def test_multiple_increments_same_group_one_update(proxy):
    proxy.execute("CREATE TABLE mi (id INT, a INT, b INT)")
    proxy.execute("INSERT INTO mi (id, a, b) VALUES (1, 100, 200)")
    # Two members of one packed group in a single UPDATE: the rewritten
    # assignments must nest, not last-win.
    proxy.execute("UPDATE mi SET a = a + 5, b = b - 3 WHERE id = 1")
    assert _rows(proxy, "SELECT a, b FROM mi") == [(105, 197)]


def test_absolute_set_rewrites_only_target_slot(proxy):
    proxy.execute("CREATE TABLE rmw (id INT, a INT, b INT)")
    proxy.execute("INSERT INTO rmw (id, a, b) VALUES (1, 1, 2), (2, 3, 4)")
    proxy.execute("UPDATE rmw SET a = a + 10 WHERE id = 2")  # pending delta
    proxy.execute("UPDATE rmw SET b = ? WHERE id = 2", (99,))
    # The read-modify-write must splice b's slot while keeping a's pending
    # homomorphic increment bit-exact, and leave other rows alone.
    assert _rows(proxy, "SELECT id, a, b FROM rmw ORDER BY id") == [
        (1, 1, 2),
        (2, 13, 99),
    ]


def test_absolute_set_to_null_then_aggregate(proxy):
    proxy.execute("CREATE TABLE ns (id INT, v INT)")
    proxy.execute("INSERT INTO ns (id, v) VALUES (1, 5), (2, 6)")
    proxy.execute("UPDATE ns SET v = ? WHERE id = 1", (None,))
    assert _rows(proxy, "SELECT SUM(v), AVG(v) FROM ns") == [(6, 6.0)]


def test_sum_across_chunk_boundaries(make_proxy):
    proxy = make_proxy(hom_packing=PackingConfig(value_bits=32, headroom_bits=2))
    proxy.execute("CREATE TABLE big (id INT, v INT)")
    rows = [(i, i * 3 - 10) for i in range(11)]  # 11 rows > 2 chunks of 4
    proxy.executemany("INSERT INTO big (id, v) VALUES (?, ?)", rows)
    expected = sum(v for _, v in rows)
    assert _rows(proxy, "SELECT SUM(v) FROM big") == [(expected,)]
    assert _rows(proxy, "SELECT AVG(v) FROM big") == [(expected / len(rows),)]


def test_grouped_sum_packed(proxy):
    proxy.execute("CREATE TABLE gs (tag VARCHAR(8), v INT)")
    proxy.execute(
        "INSERT INTO gs (tag, v) VALUES ('a', 1), ('a', 2), ('b', NULL), ('b', 7)"
    )
    rows = sorted(_rows(proxy, "SELECT tag, SUM(v), AVG(v) FROM gs GROUP BY tag"))
    assert rows == [("a", 3, 1.5), ("b", 7, 7.0)]


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rows=st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(min_value=-10_000, max_value=10_000)),
            st.one_of(st.none(), st.integers(min_value=-10_000, max_value=10_000)),
        ),
        min_size=1,
        max_size=8,
    ),
    delta=st.integers(min_value=-500, max_value=500),
)
def test_packed_matches_scalar_pipeline(make_proxy, rows, delta):
    """The packed proxy and the scalar proxy answer identically."""
    packed = make_proxy()
    scalar = make_proxy(hom_packing=False)
    assert packed.hom_packing is not None and scalar.hom_packing is None
    for proxy in (packed, scalar):
        proxy.execute("CREATE TABLE eq (id INT, x INT, y INT)")
        proxy.executemany(
            "INSERT INTO eq (id, x, y) VALUES (?, ?, ?)",
            [(i, x, y) for i, (x, y) in enumerate(rows)],
        )
        proxy.execute("UPDATE eq SET x = x + ?", (delta,))
        proxy.execute("UPDATE eq SET y = ? WHERE id = 0", (42,))
    queries = [
        "SELECT SUM(x), SUM(y), AVG(x), AVG(y), COUNT(*) FROM eq",
        "SELECT id, x, y FROM eq ORDER BY id",
    ]
    for sql in queries:
        assert _rows(packed, sql) == _rows(scalar, sql)

"""Rewrite-plan cache: hits, invalidation on onion adjustment, statistics."""

import pytest

from repro.errors import ProxyError
from repro.sql.parameters import normalize_statement_text


@pytest.fixture()
def loaded(make_proxy):
    proxy = make_proxy()
    proxy.execute("CREATE TABLE emp (id int, name varchar(50), salary int)")
    proxy.executemany(
        "INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)",
        [(1, "Alice", 70000), (2, "Bob", 50000), (3, "Carol", 90000)],
    )
    return proxy


def test_repeated_shape_hits_cache_and_skips_rewrite(loaded):
    proxy = loaded
    proxy.execute("SELECT name FROM emp WHERE id = ?", (1,))  # miss + adjust
    proxy.execute("SELECT name FROM emp WHERE id = ?", (2,))  # miss (adjusted)
    rewrites_before = proxy.stats.queries_rewritten
    hits_before = proxy.stats.plan_cache_hits
    for key in (3, 1, 2):
        assert proxy.execute("SELECT name FROM emp WHERE id = ?", (key,)).rows
    assert proxy.stats.plan_cache_hits == hits_before + 3
    assert proxy.stats.queries_rewritten == rewrites_before  # no re-rewrites


def test_cache_key_is_shape_not_spelling(loaded):
    proxy = loaded
    proxy.execute("SELECT name FROM emp WHERE id = ?", (1,))
    proxy.execute("SELECT name FROM emp WHERE id = ?", (1,))
    hits_before = proxy.stats.plan_cache_hits
    # Different whitespace and keyword case, same normalized shape.
    result = proxy.execute("select   name\nFROM emp   where id = ?", (3,))
    assert result.rows == [("Carol",)]
    assert proxy.stats.plan_cache_hits == hits_before + 1
    assert normalize_statement_text("select  a from t") == normalize_statement_text(
        "SELECT a FROM t"
    )


def test_onion_adjustment_invalidates_cached_plans(loaded):
    proxy = loaded
    # Cache an equality plan bound to the Eq onion's DET layer.
    proxy.execute("SELECT name FROM emp WHERE id = ?", (1,))
    proxy.execute("SELECT name FROM emp WHERE id = ?", (2,))
    assert proxy.stats.plan_cache_hits >= 1

    # A join against a second table lowers emp.id all the way to JOIN and
    # re-keys its JOIN-ADJ component: the cached DET-level plan is now wrong.
    proxy.execute("CREATE TABLE dept (eid int, dname varchar(20))")
    proxy.executemany(
        "INSERT INTO dept (eid, dname) VALUES (?, ?)", [(1, "sales"), (3, "eng")]
    )
    proxy.execute("SELECT name, dname FROM emp JOIN dept ON id = eid")

    invalidations_before = proxy.stats.plan_cache_invalidations
    # Same shape again: must be re-rewritten at the JOIN layer, and still
    # return correct results (a stale plan would silently match nothing).
    result = proxy.execute("SELECT name FROM emp WHERE id = ?", (1,))
    assert result.rows == [("Alice",)]
    assert proxy.stats.plan_cache_invalidations == invalidations_before + 1


def test_mid_session_range_adjustment_invalidates(loaded):
    proxy = loaded
    proxy.execute("SELECT salary FROM emp WHERE id = ?", (1,))
    proxy.execute("SELECT salary FROM emp WHERE id = ?", (2,))
    hits_before = proxy.stats.plan_cache_hits
    # Lowering salary's Ord onion mid-session bumps the schema version.
    proxy.execute("SELECT id FROM emp WHERE salary > ?", (60000,))
    result = proxy.execute("SELECT salary FROM emp WHERE id = ?", (3,))
    assert result.rows == [(90000,)]
    # The projection plan was discarded (version change), not served stale.
    assert proxy.stats.plan_cache_invalidations >= 1
    assert proxy.stats.plan_cache_hits >= hits_before


def test_hom_increment_invalidates_projection_plans(loaded):
    proxy = loaded
    assert proxy.execute("SELECT salary FROM emp WHERE id = ?", (2,)).rows == [(50000,)]
    proxy.execute("UPDATE emp SET salary = salary + ?", (7,))
    # The cached projection read the Eq onion; after the increment only the
    # Add onion is fresh, so the plan must be rebuilt, not replayed.
    assert proxy.execute("SELECT salary FROM emp WHERE id = ?", (2,)).rows == [(50007,)]


def test_results_identical_with_cache_disabled(make_proxy):
    queries = [
        ("SELECT name FROM emp WHERE id = ?", (1,)),
        ("SELECT name FROM emp WHERE id = ?", (2,)),
        ("SELECT id FROM emp WHERE salary BETWEEN ? AND ? ORDER BY id", (40000, 80000)),
        ("SELECT id FROM emp WHERE salary BETWEEN ? AND ? ORDER BY id", (80000, 99000)),
        ("SELECT SUM(salary) FROM emp", ()),
    ]

    def run(plan_cache_size):
        proxy = make_proxy(plan_cache_size=plan_cache_size)
        proxy.execute("CREATE TABLE emp (id int, name varchar(50), salary int)")
        proxy.executemany(
            "INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)",
            [(1, "Alice", 70000), (2, "Bob", 50000), (3, "Carol", 90000)],
        )
        return [proxy.execute(sql, params).rows for sql, params in queries]

    cached = run(plan_cache_size=256)
    uncached = run(plan_cache_size=0)
    assert cached == uncached


def test_literal_write_plans_are_not_cached(loaded):
    """Plans baking fresh IVs/HOM randomness must never be replayed."""
    proxy = loaded
    sql = "INSERT INTO emp (id, name, salary) VALUES (9, 'Zed', 1)"
    proxy.execute(sql)
    rewrites_before = proxy.stats.queries_rewritten
    proxy.execute("INSERT INTO emp (id, name, salary) VALUES (9, 'Zed', 1)")
    assert proxy.stats.queries_rewritten == rewrites_before + 1  # re-rewritten
    eq_cells = set()
    for _, row in proxy.db.table("table1").scan():
        eq_cells.add(bytes(row["C2_Eq"]))
    # Same plaintext inserted twice still produced distinct RND ciphertexts.
    assert proxy.execute("SELECT COUNT(*) FROM emp WHERE name = ?", ("Zed",)).scalar() == 2
    assert len(eq_cells) == 5


def test_cache_capacity_is_bounded(make_proxy):
    proxy = make_proxy(plan_cache_size=4)
    proxy.execute("CREATE TABLE t (a int)")
    proxy.execute("INSERT INTO t (a) VALUES (?)", (1,))
    for i in range(10):
        proxy.execute(f"SELECT a FROM t WHERE a = {i}")
    assert len(proxy.plan_cache) <= 4


def test_parameter_count_enforced(loaded):
    with pytest.raises(ProxyError):
        loaded.execute("SELECT name FROM emp WHERE id = ?", (1, 2))
    prepared = loaded.prepare("SELECT name FROM emp WHERE id = ?")
    with pytest.raises(ProxyError):
        loaded.execute_prepared(prepared, ())


def test_stats_reset_and_per_type_timings(loaded):
    proxy = loaded
    proxy.execute("SELECT name FROM emp WHERE id = ?", (1,))
    proxy.execute("DELETE FROM emp WHERE id = ?", (3,))
    summary = proxy.stats.query_type_summary()
    assert summary["SELECT"]["count"] >= 1
    assert summary["INSERT"]["count"] >= 1  # from the fixture's executemany
    assert summary["DELETE"]["count"] == 1
    assert summary["SELECT"]["mean_ms"] > 0
    assert proxy.stats.plan_cache_misses > 0

    proxy.stats.reset()
    assert proxy.stats.queries_processed == 0
    assert proxy.stats.plan_cache_hits == 0
    assert proxy.stats.plan_cache_misses == 0
    assert proxy.stats.per_query_type_seconds == {}
    assert proxy.stats.proxy_time_seconds == 0.0
    # The proxy keeps working (and counting) after a reset.
    proxy.execute("SELECT name FROM emp WHERE id = ?", (1,))
    assert proxy.stats.queries_processed == 1

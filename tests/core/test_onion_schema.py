"""Onion model and proxy-side schema metadata."""

import pytest

from repro.core.onion import (
    ComputationClass,
    EncryptionScheme,
    Onion,
    SecurityLevel,
    is_at_least,
    layer_index,
    requirement_for,
)
from repro.core.schema import ProxySchema
from repro.errors import ProxyError
from repro.sql.parser import parse_sql


def test_layer_order_in_eq_onion():
    assert layer_index(Onion.EQ, EncryptionScheme.RND) == 0
    assert layer_index(Onion.EQ, EncryptionScheme.DET) == 1
    assert layer_index(Onion.EQ, EncryptionScheme.JOIN) == 2
    assert is_at_least(EncryptionScheme.DET, EncryptionScheme.DET, Onion.EQ)
    assert is_at_least(EncryptionScheme.JOIN, EncryptionScheme.DET, Onion.EQ)
    assert not is_at_least(EncryptionScheme.RND, EncryptionScheme.DET, Onion.EQ)


def test_requirements_map():
    assert requirement_for(ComputationClass.EQUALITY) == (Onion.EQ, EncryptionScheme.DET)
    assert requirement_for(ComputationClass.ORDER) == (Onion.ORD, EncryptionScheme.OPE)
    assert requirement_for(ComputationClass.ADDITION) == (Onion.ADD, EncryptionScheme.HOM)
    assert requirement_for(ComputationClass.WORD_SEARCH) == (Onion.SEARCH, EncryptionScheme.SEARCH)
    assert requirement_for(ComputationClass.NONE) is None
    with pytest.raises(ProxyError):
        requirement_for(ComputationClass.PLAINTEXT)


def test_security_levels():
    assert SecurityLevel.of(EncryptionScheme.RND) == SecurityLevel.RND
    assert SecurityLevel.of(EncryptionScheme.HOM) == SecurityLevel.RND
    assert SecurityLevel.of(EncryptionScheme.DET) == SecurityLevel.DET
    assert SecurityLevel.of(EncryptionScheme.OPE) < SecurityLevel.of(EncryptionScheme.DET)
    with pytest.raises(ProxyError):
        layer_index(Onion.ADD, EncryptionScheme.DET)


def _schema() -> ProxySchema:
    schema = ProxySchema()
    create = parse_sql(
        "CREATE TABLE emp (id INT, name VARCHAR(40), notes TEXT, photo BLOB)"
    )
    schema.add_table("emp", create.columns, plaintext_columns={"photo"})
    return schema


def test_onions_per_column_kind():
    schema = _schema()
    id_col = schema.column("emp", "id")
    assert set(id_col.onions) == {Onion.EQ, Onion.ORD, Onion.ADD}
    name_col = schema.column("emp", "name")
    assert set(name_col.onions) == {Onion.EQ, Onion.ORD, Onion.SEARCH}
    photo = schema.column("emp", "photo")
    assert photo.plaintext and not photo.onions


def test_anonymized_names_hide_identifiers():
    schema = _schema()
    table = schema.table("emp")
    assert table.anon_name.startswith("table")
    column = table.column("name")
    assert column.onion_state(Onion.EQ).anon_name == "C2_Eq"
    assert column.iv_column == "C2_IV"


def test_initial_levels_and_lowering():
    schema = _schema()
    column = schema.column("emp", "name")
    assert column.onion_state(Onion.EQ).level == EncryptionScheme.RND
    removed = schema.lower_onion("emp", "name", Onion.EQ, EncryptionScheme.DET)
    assert removed == [EncryptionScheme.RND]
    assert column.onion_state(Onion.EQ).level == EncryptionScheme.DET
    # Lowering again to the same level is a no-op.
    assert schema.lower_onion("emp", "name", Onion.EQ, EncryptionScheme.DET) == []
    removed = schema.lower_onion("emp", "name", Onion.EQ, EncryptionScheme.JOIN)
    assert removed == [EncryptionScheme.DET]


def test_min_enc():
    schema = _schema()
    column = schema.column("emp", "id")
    assert column.min_enc() == SecurityLevel.RND
    schema.lower_onion("emp", "id", Onion.EQ, EncryptionScheme.DET)
    assert column.min_enc() == SecurityLevel.DET
    schema.lower_onion("emp", "id", Onion.ORD, EncryptionScheme.OPE)
    assert column.min_enc() == SecurityLevel.OPE
    assert schema.column("emp", "photo").min_enc() == SecurityLevel.PLAIN


def test_minimum_level_constraint():
    schema = ProxySchema()
    create = parse_sql("CREATE TABLE cc (number VARCHAR(20))")
    schema.add_table("cc", create.columns, minimum_levels={"number": SecurityLevel.DET})
    column = schema.column("cc", "number")
    assert column.allows_level(Onion.EQ, EncryptionScheme.DET)
    assert not column.allows_level(Onion.ORD, EncryptionScheme.OPE)

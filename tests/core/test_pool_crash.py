"""Worker crashes mid-batch: self-healing, circuit breaker, exact results.

The contract under test: a SIGKILLed worker (or any pool transport failure)
may cost latency, never correctness.  The batch either completes through the
pool's own recovery (the stdlib Pool repopulates idle-dead workers; the
bounded ``map_async(...).get`` turns a lost in-flight task into
:class:`ParallelUnavailable`) or the caller re-runs it serially -- with
identical ciphertext semantics either way.  Counters accumulate as deltas,
so crash + restart can never double-count ``worker_det_hits``; a burst of
failures opens the circuit breaker (callers go serial) and the first probe
after the cooldown respawns the workers.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading

import pytest

from repro import faults
from repro.core.proxy import CryptDBProxy
from repro.crypto.keys import MasterKey
from repro.parallel import CryptoWorkerPool, ParallelConfig
from repro.parallel.jobs import HomEncryptJob
from repro.parallel.pool import ParallelUnavailable
from repro.sql.engine import Database

#: Aggressive sizing so small test batches offload, with a short scatter
#: timeout so a genuinely lost task fails in seconds, not a minute.
CRASHY = ParallelConfig(
    workers=2,
    chunk_threshold=4,
    scatter_timeout=10.0,
    max_pool_failures=2,
    failure_window=30.0,
    circuit_cooldown=0.3,
)


def _make_proxy(paillier_keypair, **parallel_overrides) -> CryptDBProxy:
    config = (
        dataclasses.replace(CRASHY, **parallel_overrides)
        if parallel_overrides
        else CRASHY
    )
    return CryptDBProxy(
        db=Database(),
        master_key=MasterKey.from_passphrase("pool-crash"),
        paillier=paillier_keypair,
        parallelism=config,
        hom_precompute=4,
    )


def _unpicklable_job(chunk):
    return lambda: chunk  # a lambda can't cross the IPC boundary


# ---------------------------------------------------------------------------
# SIGKILL mid-batch
# ---------------------------------------------------------------------------
def test_sigkill_at_scatter_entry_preserves_results(paillier_keypair):
    """Kill a worker as a batch enters scatter; answers must not change.

    The ``pool.scatter`` fault action SIGKILLs one live worker right before
    the chunks are dispatched.  Whether the pool repopulates, self-heals,
    or the encryptor falls back to serial crypto, the decrypted results
    must equal a crash-free proxy's under the same master key.
    """
    parallel = _make_proxy(paillier_keypair)
    serial = CryptDBProxy(
        db=Database(),
        master_key=MasterKey.from_passphrase("pool-crash"),
        paillier=paillier_keypair,
        hom_precompute=4,
    )
    plan = faults.FaultPlan(
        7,
        [
            faults.FaultRule(
                "pool.scatter",
                trigger_hits=(1,),
                kind="call",
                action=faults.kill_one_worker,
                scope=parallel.pool,
            )
        ],
    )
    rows = [(i, f"name-{i % 7}", 3 * i) for i in range(40)]
    try:
        for proxy in (parallel, serial):
            proxy.execute("CREATE TABLE t (id INT, name VARCHAR(30), qty INT)")
        with faults.armed(plan) as injector:
            for proxy in (parallel, serial):
                proxy.executemany(
                    "INSERT INTO t (id, name, qty) VALUES (?, ?, ?)", rows
                )
        assert injector.fired_count == 1, "the kill action must have fired"
        for sql, params in (
            ("SELECT COUNT(*) FROM t", ()),
            ("SELECT id, qty FROM t WHERE name = ? ORDER BY id ASC", ("name-3",)),
            ("SELECT SUM(qty) FROM t", ()),
        ):
            assert (
                parallel.execute(sql, params).rows
                == serial.execute(sql, params).rows
            ), sql
        # Delta-based absorption: reading stats twice changes nothing, so a
        # crash/restart in the middle cannot have double-counted hits.
        first = parallel.stats.cache_stats()
        second = parallel.stats.cache_stats()
        assert (first.worker_det_hits, first.worker_det_misses) == (
            second.worker_det_hits,
            second.worker_det_misses,
        )
    finally:
        parallel.close()
        serial.close()


def test_sigkill_while_batch_in_flight(paillier_keypair):
    """SIGKILL a worker while its chunk is genuinely in flight.

    The stdlib Pool loses an in-flight task forever; the bounded get()
    turns that into ParallelUnavailable, the pool marks itself broken, and
    the next ``usable()`` probe heals it.  Either way the batch's values
    must come back exact.
    """
    pool = CryptoWorkerPool(CRASHY, paillier_keypair)
    values = list(range(300))
    killed = threading.Event()

    def killer():
        for process in list(pool._pool._pool):
            if process.is_alive():
                os.kill(process.pid, signal.SIGKILL)
                killed.set()
                return

    timer = threading.Timer(0.02, killer)
    timer.start()
    try:
        try:
            result = pool.scatter(
                values, lambda chunk: HomEncryptJob(values=chunk)
            )
        except ParallelUnavailable:
            # The in-flight chunk died with its worker: bounded failure,
            # broken pool, then self-healing on the next probe.
            assert pool.broken
            assert pool.failures >= 1
            assert pool.usable(len(values)), "pool must self-heal"
            assert pool.restarts >= 1
            result = pool.scatter(
                values, lambda chunk: HomEncryptJob(values=chunk)
            )
        timer.join()
        assert killed.is_set(), "the killer thread must have found a worker"
        assert [paillier_keypair.decrypt(ct) for ct in result] == values
    finally:
        timer.cancel()
        pool.close()


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
def test_circuit_breaker_opens_then_recovers(paillier_keypair, wait_until):
    pool = CryptoWorkerPool(CRASHY, paillier_keypair)

    def fail_once():
        with pytest.raises(ParallelUnavailable):
            pool.scatter(list(range(8)), _unpicklable_job)

    try:
        fail_once()
        assert pool.broken and pool.failures == 1
        # First failure: plain self-heal, no circuit.
        assert pool.usable(8)
        assert pool.restarts == 1 and not pool.circuit_open
        # Second failure within the window trips the breaker.
        fail_once()
        assert pool.failures == 2
        assert pool.circuit_opens == 1 and pool.circuit_open
        assert not pool.usable(8), "open circuit must force serial fallback"
        assert pool.restarts == 1, "no respawn while the circuit is open"
        wait_until(
            lambda: not pool.circuit_open,
            timeout=5,
            message="circuit cooldown to elapse",
        )
        # First probe after the cooldown re-probes by respawning.
        assert pool.usable(8)
        assert pool.restarts == 2
        result = pool.scatter(
            list(range(8)), lambda chunk: HomEncryptJob(values=chunk)
        )
        assert [paillier_keypair.decrypt(ct) for ct in result] == list(range(8))
    finally:
        pool.close()


def test_auto_restart_disabled_stays_broken(paillier_keypair):
    pool = CryptoWorkerPool(
        dataclasses.replace(CRASHY, auto_restart=False), paillier_keypair
    )
    try:
        with pytest.raises(ParallelUnavailable):
            pool.scatter(list(range(8)), _unpicklable_job)
        assert pool.broken
        assert not pool.usable(8)
        assert pool.restarts == 0
    finally:
        pool.close()


def test_closed_pool_never_heals(paillier_keypair):
    pool = CryptoWorkerPool(CRASHY, paillier_keypair)
    pool.close()
    assert not pool.usable(10**9)
    assert pool.restarts == 0


# ---------------------------------------------------------------------------
# health counters travel cache_stats()
# ---------------------------------------------------------------------------
def test_pool_health_counters_in_cache_stats(paillier_keypair):
    proxy = _make_proxy(paillier_keypair)
    try:
        stats = proxy.stats.cache_stats()
        assert (stats.pool_restarts, stats.pool_failures) == (0, 0)
        assert stats.pool_circuit_opens == 0 and stats.pool_circuit_open == 0
        with pytest.raises(ParallelUnavailable):
            proxy.pool.scatter(list(range(8)), _unpicklable_job)
        proxy.pool.usable(8)  # heal -> restart
        stats = proxy.stats.cache_stats()
        assert stats.pool_failures == 1
        assert stats.pool_restarts == 1
        # reset() zeroes the lifetime counters with everything else.
        proxy.stats.reset()
        stats = proxy.stats.cache_stats()
        assert (stats.pool_restarts, stats.pool_failures) == (0, 0)
        assert stats.pool_circuit_opens == 0
    finally:
        proxy.close()

"""End-to-end behaviour of the single-principal CryptDB proxy."""

import pytest

from repro.core.onion import EncryptionScheme, Onion, SecurityLevel
from repro.errors import SQLExecutionError, UnsupportedQueryError
from repro.sql import ast_nodes as ast


@pytest.fixture()
def loaded(make_proxy):
    proxy = make_proxy()
    proxy.execute("CREATE TABLE Employees (ID int, Name varchar(50), salary int, bio text)")
    proxy.execute(
        "INSERT INTO Employees (ID, Name, salary, bio) VALUES "
        "(23, 'Alice', 70000, 'works on encrypted databases'), "
        "(7, 'Bob', 50000, 'enjoys systems research'), "
        "(9, 'Carol', 90000, 'writes compilers and databases')"
    )
    return proxy


def test_equality_select(loaded):
    assert loaded.execute("SELECT ID FROM Employees WHERE Name = 'Alice'").rows == [(23,)]
    assert loaded.execute("SELECT COUNT(*) FROM Employees WHERE Name = 'Nobody'").scalar() == 0


def test_range_and_order(loaded):
    result = loaded.execute(
        "SELECT Name FROM Employees WHERE salary > 60000 ORDER BY salary DESC"
    )
    assert result.rows == [("Carol",), ("Alice",)]
    assert loaded.execute("SELECT MIN(salary), MAX(salary) FROM Employees").rows == [(50000, 90000)]


def test_sum_and_avg_via_hom(loaded):
    assert loaded.execute("SELECT SUM(salary) FROM Employees").scalar() == 210000
    assert loaded.execute("SELECT AVG(salary) FROM Employees").scalar() == 70000


def test_group_by_and_having(loaded):
    loaded.execute("INSERT INTO Employees (ID, Name, salary, bio) VALUES (30, 'Alice', 10, 'x')")
    result = loaded.execute(
        "SELECT Name, COUNT(*) FROM Employees GROUP BY Name HAVING COUNT(*) > 1"
    )
    assert result.rows == [("Alice", 2)]


def test_in_between_distinct(loaded):
    assert loaded.execute("SELECT ID FROM Employees WHERE ID IN (7, 9) ORDER BY ID").rows == [(7,), (9,)]
    assert loaded.execute(
        "SELECT Name FROM Employees WHERE salary BETWEEN 60000 AND 80000"
    ).rows == [("Alice",)]
    assert len(loaded.execute("SELECT DISTINCT Name FROM Employees").rows) == 3


def test_word_search_like(loaded):
    result = loaded.execute("SELECT ID FROM Employees WHERE bio LIKE '% databases %'")
    assert sorted(result.rows) == [(9,), (23,)]
    result = loaded.execute("SELECT ID FROM Employees WHERE bio LIKE '%compilers%'")
    assert result.rows == [(9,)]


def test_update_set_and_increment(loaded):
    loaded.execute("UPDATE Employees SET salary = 55000 WHERE Name = 'Bob'")
    assert loaded.execute("SELECT salary FROM Employees WHERE Name = 'Bob'").rows == [(55000,)]
    loaded.execute("UPDATE Employees SET salary = salary + 7 WHERE Name = 'Bob'")
    assert loaded.execute("SELECT salary FROM Employees WHERE Name = 'Bob'").rows == [(55007,)]
    assert loaded.execute("SELECT SUM(salary) FROM Employees").scalar() == 70000 + 55007 + 90000


def test_delete_and_null_handling(loaded):
    loaded.execute("INSERT INTO Employees (ID, Name, salary, bio) VALUES (40, 'Dan', NULL, NULL)")
    assert loaded.execute("SELECT salary FROM Employees WHERE ID = 40").rows == [(None,)]
    assert loaded.execute("SELECT ID FROM Employees WHERE salary IS NULL").rows == [(40,)]
    loaded.execute("DELETE FROM Employees WHERE ID = 40")
    assert loaded.execute("SELECT COUNT(*) FROM Employees").scalar() == 3


def test_equi_join_with_adjustment(loaded):
    loaded.execute("CREATE TABLE Dept (eid int, dname varchar(20))")
    loaded.execute("INSERT INTO Dept (eid, dname) VALUES (23, 'sales'), (9, 'eng')")
    before = loaded.joins.adjustments_performed
    result = loaded.execute(
        "SELECT Name, dname FROM Employees JOIN Dept ON ID = eid ORDER BY Name"
    )
    assert result.rows == [("Alice", "sales"), ("Carol", "eng")]
    assert loaded.joins.adjustments_performed > before
    # Second join between the same columns needs no further adjustment.
    after = loaded.joins.adjustments_performed
    loaded.execute("SELECT Name, dname FROM Employees JOIN Dept ON ID = eid")
    assert loaded.joins.adjustments_performed == after


def test_server_sees_only_anonymised_ciphertext(loaded):
    assert loaded.db.table_names() == ["table1"]
    table = loaded.db.table("table1")
    column_names = [c.name for c in table.columns]
    assert "Name" not in column_names and "salary" not in column_names
    for _, row in table.scan():
        for name, value in row.items():
            if isinstance(value, bytes):
                assert b"Alice" not in value and b"Carol" not in value


def test_onion_levels_adjust_lazily(make_proxy):
    proxy = make_proxy()
    proxy.execute("CREATE TABLE t (a int, b int)")
    proxy.execute("INSERT INTO t (a, b) VALUES (1, 2)")
    assert proxy.onion_level("t", "a", Onion.EQ) == "RND"
    proxy.execute("SELECT a FROM t WHERE a = 1")
    assert proxy.onion_level("t", "a", Onion.EQ) == "DET"
    assert proxy.onion_level("t", "b", Onion.EQ) == "RND"
    proxy.execute("SELECT a FROM t WHERE b < 10")
    assert proxy.onion_level("t", "b", Onion.ORD) == "OPE"
    assert proxy.min_enc("t", "b") == SecurityLevel.OPE


def test_minimum_layer_constraint_blocks_order_queries(make_proxy):
    proxy = make_proxy()
    proxy.create_table(
        "CREATE TABLE cards (number varchar(20), holder varchar(50))",
        minimum_levels={"number": SecurityLevel.DET},
    )
    proxy.execute("INSERT INTO cards (number, holder) VALUES ('4111111111111111', 'Alice')")
    assert proxy.execute(
        "SELECT holder FROM cards WHERE number = '4111111111111111'"
    ).rows == [("Alice",)]
    with pytest.raises(UnsupportedQueryError):
        proxy.execute("SELECT holder FROM cards WHERE number < '5'")


def test_plaintext_column_annotation(make_proxy):
    proxy = make_proxy()
    proxy.create_table(
        "CREATE TABLE logs (id int, created varchar(20), details text)",
        plaintext_columns=["created"],
    )
    proxy.execute("INSERT INTO logs (id, created, details) VALUES (1, '2011-10-01', 'x')")
    table = proxy.db.table(proxy.schema.table("logs").anon_name)
    row = next(table.scan())[1]
    assert row["created"] == "2011-10-01"  # stored in plaintext by annotation
    assert proxy.execute("SELECT details FROM logs WHERE created = '2011-10-01'").rows == [("x",)]


def test_unsupported_queries_rejected(loaded):
    with pytest.raises(UnsupportedQueryError):
        loaded.execute("SELECT ID FROM Employees WHERE salary > ID * 2")
    with pytest.raises(UnsupportedQueryError):
        loaded.execute("SELECT ID FROM Employees WHERE LOWER(Name) = 'alice'")
    with pytest.raises(UnsupportedQueryError):
        loaded.execute("SELECT ID FROM Employees WHERE bio LIKE 'prefix%suffix%'")
    assert loaded.stats.unsupported_queries >= 3


def test_in_proxy_processing_keeps_ord_onion_at_rnd(make_proxy):
    proxy = make_proxy(in_proxy_processing=True)
    proxy.execute("CREATE TABLE t (a int, label varchar(10))")
    proxy.execute("INSERT INTO t (a, label) VALUES (3, 'c'), (1, 'a'), (2, 'b')")
    result = proxy.execute("SELECT a, label FROM t ORDER BY a")
    assert [row[0] for row in result.rows] == [1, 2, 3]
    # The Ord onion never left RND: sorting happened in the proxy (§3.5.1).
    assert proxy.onion_level("t", "a", Onion.ORD) == "RND"


def test_in_proxy_order_places_nulls_like_the_server_would(make_proxy):
    """In-proxy ORDER BY must match server-side NULL placement.

    Every lane of the conformance harness sorts NULLS FIRST ascending and
    NULLS LAST descending; the §3.5.1 in-proxy sort used to do the
    opposite on both directions.
    """
    proxy = make_proxy(in_proxy_processing=True)
    proxy.execute("CREATE TABLE t (a int, label varchar(10))")
    proxy.execute(
        "INSERT INTO t (a, label) VALUES (3, 'c'), (NULL, 'n'), (1, 'a'), (2, 'b')"
    )
    ascending = proxy.execute("SELECT a FROM t ORDER BY a")
    assert [row[0] for row in ascending.rows] == [None, 1, 2, 3]
    descending = proxy.execute("SELECT a FROM t ORDER BY a DESC")
    assert [row[0] for row in descending.rows] == [3, 2, 1, None]


def test_failed_rewrite_rewinds_onion_metadata(make_proxy):
    """An unsupported statement must not leave onion levels half-lowered.

    ``WHERE ref > 2`` lowers ref's Ord onion in the schema while the
    rewriter walks the clauses; the projection over the HOM-stale qty
    column then aborts the rewrite, so the adjustment UPDATE never runs.
    Without a rewind the schema claims OPE while the data is still
    RND-wrapped, and the next range query compares garbage (caught by the
    differential conformance harness, seed 117).
    """
    proxy = make_proxy()
    proxy.execute("CREATE TABLE t (id int, qty int, ref int)")
    proxy.execute("INSERT INTO t (id, qty, ref) VALUES (1, 10, 3), (2, 20, 7)")
    proxy.execute("UPDATE t SET qty = qty + 5")  # qty's other onions now stale
    # Warm the plan cache with an unrelated shape; the rewind must not
    # flush it (the restored state is what the plan was built against).
    proxy.execute("SELECT id FROM t WHERE id = ?", (1,))
    invalidations = proxy.stats.plan_cache_invalidations
    with pytest.raises(UnsupportedQueryError):
        proxy.execute("SELECT MIN(qty) FROM t WHERE ref > 2")
    # ref's Ord onion metadata was rewound with the failed rewrite...
    assert proxy.onion_level("t", "ref", Onion.ORD) == "RND"
    # ...and the rewind did not flush the plan cache: the warmed shape
    # still hits (a successful lowering, below, bumps the version as ever).
    hits = proxy.stats.plan_cache_hits
    proxy.execute("SELECT id FROM t WHERE id = ?", (2,))
    assert proxy.stats.plan_cache_hits == hits + 1
    assert proxy.stats.plan_cache_invalidations == invalidations
    # The same range query now re-emits the adjustment and answers correctly.
    assert proxy.execute("SELECT id FROM t WHERE ref < 5").rows == [(1,)]


def test_failed_adjustment_rolls_back_data_and_metadata(make_proxy):
    """A server failure mid-adjustment must not strand half-lowered state.

    Real DBMS backends (the SQLite adapter) can fail while the
    onion-adjustment UPDATEs run; the proxy must roll back the
    adjustment transaction, rewind its schema metadata, and leave the
    backend out of any transaction it opened itself.
    """
    proxy = make_proxy()
    proxy.execute("CREATE TABLE t (id int, v int)")
    proxy.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")

    original_execute = proxy.db.execute

    def failing_execute(statement):
        if isinstance(statement, ast.Update):
            raise SQLExecutionError("disk I/O error")
        return original_execute(statement)

    proxy.db.execute = failing_execute
    try:
        with pytest.raises(SQLExecutionError):
            proxy.execute("SELECT id FROM t WHERE v < 15")  # needs RND->OPE strip
    finally:
        proxy.db.execute = original_execute
    assert proxy.onion_level("t", "v", Onion.ORD) == "RND"
    assert not proxy.db.transactions.in_transaction
    # With the server healthy again the same query adjusts and answers.
    assert proxy.execute("SELECT id FROM t WHERE v < 15").rows == [(1,)]
    assert proxy.onion_level("t", "v", Onion.ORD) == "OPE"


def test_failed_adjustment_inside_app_transaction_aborts_it(make_proxy):
    """Partial adjustments in an open transaction abort the transaction.

    With two RND-strips queued and the second failing, the first is
    already applied; rewinding only the metadata would re-strip column
    a's stripped ciphertexts on the next query (XOR involution re-wraps
    them) and silently return wrong rows.  There are no savepoints, so
    the proxy aborts the whole transaction: data and onion metadata
    rewind together to the BEGIN snapshot.
    """
    proxy = make_proxy()
    proxy.execute("CREATE TABLE t (id int, a int, b int)")
    proxy.execute(
        "INSERT INTO t (id, a, b) VALUES (1, 1, 1), (2, 9, 9), (3, 2, 2)"
    )
    proxy.execute("BEGIN")

    original_execute = proxy.db.execute
    update_calls = []

    def failing_execute(statement):
        if isinstance(statement, ast.Update):
            update_calls.append(statement)
            if len(update_calls) == 2:
                raise SQLExecutionError("disk I/O error")
        return original_execute(statement)

    proxy.db.execute = failing_execute
    try:
        with pytest.raises(SQLExecutionError):
            proxy.execute("SELECT id FROM t WHERE a < 5 AND b < 5")
    finally:
        proxy.db.execute = original_execute
    assert len(update_calls) == 2  # first strip applied, second failed
    # The poisoned transaction was aborted, and metadata matches the data.
    assert not proxy.db.transactions.in_transaction
    assert proxy.onion_level("t", "a", Onion.ORD) == "RND"
    assert proxy.onion_level("t", "b", Onion.ORD) == "RND"
    # No silent corruption: the same predicates now adjust and answer right.
    assert proxy.execute("SELECT id FROM t WHERE a < 5").rows == [(1,), (3,)]
    assert proxy.execute("SELECT id FROM t WHERE a < 5 AND b < 5").rows == [(1,), (3,)]


def test_create_index_builds_onion_indexes(loaded):
    loaded.execute("SELECT ID FROM Employees WHERE ID = 23")  # lower Eq to DET first
    loaded.create_index("Employees", "ID")
    anon_table = loaded.db.table("table1")
    assert anon_table.indexes.columns()
    assert loaded.execute("SELECT Name FROM Employees WHERE ID = 9").rows == [("Carol",)]


def test_transactions_pass_through(loaded):
    loaded.execute("BEGIN")
    loaded.execute("DELETE FROM Employees WHERE Name = 'Bob'")
    loaded.execute("ROLLBACK")
    assert loaded.execute("SELECT COUNT(*) FROM Employees").scalar() == 3


def test_training_mode_reports_levels_and_warnings(make_proxy):
    proxy = make_proxy()
    proxy.execute("CREATE TABLE visits (pid int, ts varchar(20), notes text)")
    proxy.execute("INSERT INTO visits (pid, ts, notes) VALUES (1, '2011-01-01', 'checkup ok')")
    report = proxy.train([
        "SELECT notes FROM visits WHERE pid = 1",
        "SELECT pid FROM visits ORDER BY ts",
        "SELECT pid FROM visits WHERE LOWER(notes) = 'x'",
    ])
    assert report.column_report("visits", "pid").onion_levels["Eq"] == "DET"
    assert report.column_report("visits", "ts").onion_levels["Ord"] == "OPE"
    assert report.warnings  # the LOWER() query cannot run over ciphertext
    # notes was only projected, so its weakest exposed onion is SEARCH.
    assert report.column_report("visits", "notes").min_enc.name == "SEARCH"
    assert report.summary()["DET"] >= 1


def test_stats_and_storage(loaded):
    assert loaded.stats.queries_processed > 0
    assert loaded.storage_bytes() > 0
    stats = loaded.cache.statistics()
    assert stats.hom_precomputed_remaining >= 0

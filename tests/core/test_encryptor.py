"""Value encoding and layered onion encryption."""

import pytest

from repro.core.encryptor import Encryptor
from repro.core.joins import JoinManager
from repro.core.onion import EncryptionScheme, Onion
from repro.core.schema import ProxySchema
from repro.crypto.keys import KeyManager, MasterKey
from repro.crypto.rnd import RND
from repro.errors import ProxyError
from repro.sql.parser import parse_sql


@pytest.fixture()
def setup(paillier_keypair):
    schema = ProxySchema()
    create = parse_sql(
        "CREATE TABLE t (n INT, s VARCHAR(50), txt TEXT, price DECIMAL(8,2))"
    )
    schema.add_table("t", create.columns)
    master = MasterKey.from_passphrase("encryptor-test")
    joins = JoinManager(master.material)
    for name in ("n", "s", "txt", "price"):
        joins.register_column("t", name)
    encryptor = Encryptor(KeyManager(master), joins, paillier_keypair)
    return schema, encryptor


def test_row_encryption_produces_all_onions(setup):
    schema, encryptor = setup
    column = schema.column("t", "n")
    cells = encryptor.encrypt_row_value(column, 42)
    assert set(cells) == {"C1_Eq", "C1_Ord", "C1_Add", "C1_IV"}
    assert isinstance(cells["C1_Eq"], bytes)
    assert isinstance(cells["C1_Ord"], int)


def test_row_encryption_null_passthrough(setup):
    schema, encryptor = setup
    cells = encryptor.encrypt_row_value(schema.column("t", "s"), None)
    assert all(value is None for value in cells.values())


def test_eq_onion_roundtrip_through_all_layers(setup):
    schema, encryptor = setup
    column = schema.column("t", "s")
    iv = RND.generate_iv()
    ciphertext = encryptor.encrypt_to_level(column, Onion.EQ, EncryptionScheme.RND, "hello", iv)
    assert encryptor.decrypt_value(column, Onion.EQ, EncryptionScheme.RND, ciphertext, iv) == "hello"
    det_ct = encryptor.encrypt_to_level(column, Onion.EQ, EncryptionScheme.DET, "hello", None)
    assert encryptor.decrypt_value(column, Onion.EQ, EncryptionScheme.DET, det_ct) == "hello"
    join_ct = encryptor.encrypt_to_level(column, Onion.EQ, EncryptionScheme.JOIN, "hello", None)
    assert encryptor.decrypt_value(column, Onion.EQ, EncryptionScheme.JOIN, join_ct) == "hello"


def test_det_constants_match_stored_values(setup):
    schema, encryptor = setup
    column = schema.column("t", "n")
    stored = encryptor.encrypt_to_level(column, Onion.EQ, EncryptionScheme.DET, 7, None)
    constant = encryptor.encrypt_constant(column, Onion.EQ, EncryptionScheme.DET, 7)
    assert stored == constant
    assert encryptor.encrypt_constant(column, Onion.EQ, EncryptionScheme.DET, 8) != constant


def test_ord_onion_preserves_order(setup):
    schema, encryptor = setup
    column = schema.column("t", "n")
    values = [-50, -1, 0, 3, 1000]
    ciphertexts = [
        encryptor.encrypt_constant(column, Onion.ORD, EncryptionScheme.OPE, v) for v in values
    ]
    assert ciphertexts == sorted(ciphertexts)
    assert encryptor.decrypt_value(column, Onion.ORD, EncryptionScheme.OPE, ciphertexts[0]) == -50


def test_decimal_encoding_roundtrip(setup):
    schema, encryptor = setup
    column = schema.column("t", "price")
    iv = RND.generate_iv()
    ciphertext = encryptor.encrypt_to_level(column, Onion.EQ, EncryptionScheme.RND, 19.99, iv)
    assert encryptor.decrypt_value(column, Onion.EQ, EncryptionScheme.RND, ciphertext, iv) == 19.99
    hom_ct = encryptor.encrypt_to_level(column, Onion.ADD, EncryptionScheme.HOM, 19.99)
    assert encryptor.decrypt_value(column, Onion.ADD, EncryptionScheme.HOM, hom_ct) == 19.99


def test_hom_handles_negative_values(setup):
    schema, encryptor = setup
    column = schema.column("t", "n")
    ciphertext = encryptor.encrypt_to_level(column, Onion.ADD, EncryptionScheme.HOM, -25)
    assert encryptor.decrypt_value(column, Onion.ADD, EncryptionScheme.HOM, ciphertext) == -25


def test_search_tokens_match_search_onion(setup):
    from repro.crypto.search import SEARCH, SearchCiphertext

    schema, encryptor = setup
    column = schema.column("t", "txt")
    stored = encryptor.encrypt_to_level(
        column, Onion.SEARCH, EncryptionScheme.SEARCH, "meeting notes about budget"
    )
    token = encryptor.search_token(column, "budget")
    assert SEARCH.matches(SearchCiphertext.deserialize(stored), token)
    assert not SEARCH.matches(SearchCiphertext.deserialize(stored), encryptor.search_token(column, "salary"))


def test_constant_encryption_rejects_rnd_level(setup):
    schema, encryptor = setup
    column = schema.column("t", "n")
    with pytest.raises(ProxyError):
        encryptor.encrypt_constant(column, Onion.EQ, EncryptionScheme.RND, 5)

"""WAL framing, torn-tail tolerance, and replay idempotence.

The write-ahead log is the durability primitive everything else stands on:
length+CRC framed JSON records, group-commit batching, an atomic
snapshot-compaction rename, and a decode that stops cleanly at a torn tail
(a crash mid-write must never poison the records before it).  Replay is
*duplicate-delivery idempotent* -- every record is state-setting, so a
record delivered twice in a row applies exactly once (property-tested
below).  Whole-stream order still matters (a later ``drop_table`` really
does drop), which is precisely the semantics recovery needs: the torn
tail re-appends records that may already be present at the log's end.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, strategies as st

from repro.durability import (
    CatalogState,
    MetadataCatalog,
    WriteAheadLog,
    decode_records,
    encode_record,
    replay_records,
    tag_value,
    untag_value,
)
from repro.errors import CatalogError


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def test_roundtrip_records(tmp_path):
    path = os.fspath(tmp_path / "log.wal")
    wal = WriteAheadLog(path)
    wal.append({"t": "meta", "version": 1})
    wal.append({"t": "meta", "version": 2})
    wal.sync()
    wal.close()
    records = WriteAheadLog(path).load()
    assert [r["version"] for r in records] == [1, 2]


def test_unsynced_records_die_with_the_process(tmp_path):
    path = os.fspath(tmp_path / "log.wal")
    wal = WriteAheadLog(path)
    wal.append({"t": "meta", "version": 1})
    wal.sync()
    wal.append({"t": "meta", "version": 2})  # never synced
    wal.abandon()
    records = WriteAheadLog(path).load()
    assert [r["version"] for r in records] == [1]


def test_torn_tail_is_truncated_not_fatal(tmp_path):
    path = os.fspath(tmp_path / "log.wal")
    wal = WriteAheadLog(path)
    wal.append({"t": "meta", "version": 1})
    wal.append({"t": "meta", "version": 2})
    wal.sync()
    wal.close()
    # Tear the last record mid-frame, as a crash mid-write would.
    full = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(full[:-3])
    records, valid = decode_records(open(path, "rb").read())
    assert [r["version"] for r in records] == [1]
    assert valid < len(full)
    # Reopening for append truncates the torn tail and keeps going.
    wal = WriteAheadLog(path)
    assert [r["version"] for r in wal.load()] == [1]
    wal.append({"t": "meta", "version": 3})
    wal.sync()
    wal.close()
    assert [r["version"] for r in WriteAheadLog(path).load()] == [1, 3]


def test_corrupt_payload_with_valid_checksum_is_an_error():
    frame = bytearray(encode_record({"t": "meta"}))
    # decode_records trusts the CRC; a checksum-valid frame that is not
    # JSON means the file was tampered with, not torn.
    import struct
    import zlib

    body = b"not json"
    bad = struct.pack("<II", len(body), zlib.crc32(body)) + body
    with pytest.raises(CatalogError):
        decode_records(bytes(frame) + bad)


def test_replace_with_compacts_atomically(tmp_path):
    path = os.fspath(tmp_path / "log.wal")
    wal = WriteAheadLog(path)
    for version in range(1, 6):
        wal.append({"t": "meta", "version": version})
    wal.sync()
    wal.replace_with([{"t": "meta", "version": 5}])
    wal.close()
    records = WriteAheadLog(path).load()
    assert [r["version"] for r in records] == [5]


def test_value_tagging_roundtrips():
    for value in (None, True, 0, -(2**80), 3.5, "x", b"\x00\xff"):
        assert untag_value(tag_value(value)) == value


# ---------------------------------------------------------------------------
# replay idempotence (property)
# ---------------------------------------------------------------------------
def _state_key(state: CatalogState) -> tuple:
    """Everything but the replay counter, hashably."""
    payload = state.snapshot_payload()
    return (
        tuple(sorted((k, repr(v)) for k, v in payload.items())),
        tuple(sorted(state.in_doubt)),
    )


_meta_record = st.fixed_dictionaries(
    {"t": st.just("meta")},
    optional={
        "levels": st.lists(
            st.tuples(
                st.sampled_from(["t0", "t1"]),
                st.sampled_from(["a", "b"]),
                st.sampled_from(["Eq", "Ord"]),
                st.sampled_from(["RND", "DET", "OPE"]),
            ).map(list),
            max_size=3,
        ),
        "hom_stale": st.lists(
            st.tuples(
                st.sampled_from(["t0", "t1"]),
                st.sampled_from(["a", "b"]),
                st.booleans(),
            ).map(list),
            max_size=2,
        ),
        "joins": st.fixed_dictionaries(
            {
                "bases": st.lists(
                    st.tuples(
                        st.just("t1"), st.sampled_from(["a", "b"]),
                        st.just("t0"), st.just("a"),
                    ).map(list),
                    max_size=2,
                )
            }
        ),
        "version": st.integers(min_value=0, max_value=40),
    },
)

_create_record = st.builds(
    lambda name, counter, version: {
        "t": "create_table",
        "table": name,
        "anon": f"anon_{name}",
        "counter": counter,
        "version": version,
        "columns": [["id", "INT", None]],
        "plaintext": [],
        "sensitive": [],
        "min_levels": [],
    },
    st.sampled_from(["t0", "t1", "t2"]),
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=1, max_value=40),
)

_drop_record = st.builds(
    lambda name, version: {"t": "drop_table", "table": name, "version": version},
    st.sampled_from(["t0", "t1", "t2"]),
    st.integers(min_value=1, max_value=40),
)

_intent_record = st.builds(
    lambda intent_id, version: {
        "t": "intent",
        "id": intent_id,
        "ops": [["strip", "t0", "a", "Eq", "RND"]],
        "meta": {"levels": [["t0", "a", "Eq", "DET"]], "version": version},
        "canary": None,
    },
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=40),
)

_resolution_record = st.builds(
    lambda kind, intent_id: {"t": kind, "id": intent_id},
    st.sampled_from(["commit", "abort"]),
    st.integers(min_value=1, max_value=5),
)

_record = st.one_of(
    _meta_record, _create_record, _drop_record, _intent_record, _resolution_record
)


@given(records=st.lists(_record, max_size=24), data=st.data())
def test_replaying_a_duplicated_prefix_is_a_noop(records, data):
    """Delivering every record of a prefix twice in a row changes nothing.

    This is the invariant crash recovery leans on: after a crash between
    ``write`` and ``fsync`` the tail records may be re-appended by the
    retrying writer, so each record must fold in idempotently.  (Whole-log
    concatenation ``replay(P + P)`` is deliberately *not* the property: a
    replayed ``drop_table`` legitimately drops state a later record built.)
    """
    cut = data.draw(st.integers(min_value=0, max_value=len(records)))
    prefix = records[:cut]
    once = replay_records(list(prefix))
    doubled = [copy for record in prefix for copy in (record, dict(record))]
    assert _state_key(replay_records(doubled)) == _state_key(once)


@given(records=st.lists(_record, max_size=24))
def test_replay_matches_snapshot_roundtrip(records):
    """Compacting to a snapshot and replaying it restores the same state."""
    state = replay_records(list(records))
    restored = CatalogState.from_snapshot(state.snapshot_payload())
    # In-doubt intents are carried beside the snapshot by compaction, so
    # the snapshot body itself covers everything *except* them.
    assert _state_key(restored)[0] == _state_key(state)[0]


def test_real_wal_replay_is_idempotent(tmp_path, make_proxy):
    """The property holds on a log a real proxy wrote, not just synthetic ones."""
    from repro.api.sqlite_backend import SQLiteBackend

    path = os.fspath(tmp_path / "real.wal")
    proxy = make_proxy(
        db=SQLiteBackend(path=os.fspath(tmp_path / "real.db")),
        catalog=MetadataCatalog(path, snapshot_every=10**9),
        hom_precompute=0,
    )
    proxy.execute("CREATE TABLE t (id INT, qty INT)")
    proxy.execute("INSERT INTO t (id, qty) VALUES (1, 10), (2, 20)")
    proxy.execute("SELECT id FROM t WHERE qty > 5")  # Ord adjustment
    proxy.execute("UPDATE t SET qty = qty + 1")  # HOM staleness meta
    proxy.close()
    proxy.db.close()
    records = WriteAheadLog(path).load()
    assert records, "the proxy must have written records"
    for cut in range(len(records) + 1):
        prefix = records[:cut]
        doubled = [copy for record in prefix for copy in (record, dict(record))]
        assert _state_key(replay_records(doubled)) == _state_key(
            replay_records(list(prefix))
        )

"""Kill-and-recover at every crash point, on every backend flavour.

One generated statement stream per mode; for each named crash point the
:class:`~repro.testing.oracle.RecoveryRunner` arms a one-shot crash rule,
lets the proxy die mid-stream (unsynced WAL records abandoned, backend
connection dropped), rebuilds it from snapshot+WAL against the surviving
database files, and finishes the stream.  Every answer and every piece of
recovered metadata -- onion levels, HOM staleness, OPE range-join groups,
JOIN-ADJ groups and effective scalars, shard routing -- must match an
uninterrupted in-memory shadow, and no two-phase adjustment may still be
in doubt afterwards.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.crypto.keys import MasterKey
from repro.testing import RecoveryRunner, StatementGenerator

#: Enough statements that every crash site's first hit lands mid-stream
#: (DDL at the head, an Ord/Eq adjustment soon after) while keeping the
#: full 18-combination sweep fast.
STREAM_LENGTH = 40

MASTER_KEY = MasterKey.from_passphrase("crash-point-tests")


@pytest.fixture()
def stream(repro_seed):
    return StatementGenerator(repro_seed, tables=2).generate_stream(STREAM_LENGTH)


@pytest.mark.parametrize("mode", RecoveryRunner.MODES)
@pytest.mark.parametrize("crash_site", faults.CRASH_SITES)
def test_crash_and_recover_matches_uninterrupted_shadow(
    tmp_path, paillier_keypair, repro_seed, stream, crash_site, mode
):
    runner = RecoveryRunner(
        tmp_path,
        crash_site,
        mode=mode,
        seed=repro_seed,
        master_key=MASTER_KEY,
        paillier=paillier_keypair,
    )
    report = runner.run(stream)
    assert report.crashed, f"{crash_site} never fired in {mode} mode"
    assert report.recoveries == 1
    assert report.ok, report.describe()
    # The lanes really compared real answers, not a wall of refusals.
    assert report.selects_compared > 0
    if crash_site.startswith("adjust."):
        # Dying inside the two-phase window leaves exactly one adjustment
        # intent neither committed nor aborted; recovery must resolve it
        # (and the report must prove it did -- the acceptance criterion).
        assert report.in_doubt_resolved >= 1, report.describe()
    else:
        assert report.in_doubt_resolved == 0, report.describe()


def test_second_hit_crashes_later_in_the_stream(tmp_path, paillier_keypair, repro_seed, stream):
    """``at_hit`` moves the kill deeper into the stream; recovery still holds."""
    (tmp_path / "first").mkdir()
    (tmp_path / "later").mkdir()
    first = RecoveryRunner(
        tmp_path / "first",
        "wal.append",
        mode="packed",
        seed=repro_seed,
        master_key=MASTER_KEY,
        paillier=paillier_keypair,
    ).run(stream)
    later = RecoveryRunner(
        tmp_path / "later",
        "wal.append",
        mode="packed",
        at_hit=12,
        seed=repro_seed,
        master_key=MASTER_KEY,
        paillier=paillier_keypair,
    ).run(stream)
    assert first.ok and later.ok, f"{first.describe()}\n{later.describe()}"
    assert later.crashed
    assert later.crash_index > first.crash_index


def test_unknown_crash_site_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="not a crash point"):
        RecoveryRunner(tmp_path, "adjust.nonsense")
    with pytest.raises(ValueError, match="unknown recovery mode"):
        RecoveryRunner(tmp_path, "wal.append", mode="quantum")

"""Restart-path behaviour: ``connect(catalog=...)``, guards, close flushing.

The durable catalog exists so a proxy process can die and a new one can
pick up the same encrypted database files.  These tests drive that path
through the public API: a clean restart must restore schema, onion levels
and JOIN state from snapshot+WAL; an *un*-catalogued reattach to an
existing encrypted file must be refused loudly (the ciphertexts would be
unreadable garbage under fresh metadata); and ``Connection.close`` must
flush the catalog before the backend handle goes away -- idempotently,
even when the flush itself fails.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.api.exceptions import OperationalError
from repro.api.sqlite_backend import SQLiteBackend
from repro.crypto.keys import MasterKey
from repro.durability import MetadataCatalog, WriteAheadLog
from repro.errors import CatalogError


MASTER_KEY = MasterKey.from_passphrase("catalog-recovery-tests")


@pytest.fixture()
def connect_kwargs(paillier_keypair):
    """Keyword arguments every connection in this module shares.

    The master key and Paillier pair must be identical across restarts --
    column keys re-derive from the master key, and the catalog never logs
    key material.
    """
    return {
        "master_key": MASTER_KEY,
        "paillier": paillier_keypair,
        "hom_precompute": 0,
    }


def _populate(conn):
    cur = conn.cursor()
    cur.execute("CREATE TABLE emp (id INT, name TEXT, salary INT)")
    cur.executemany(
        "INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)",
        [(1, "alice", 70000), (2, "bob", 50000), (3, "carol", 90000)],
    )
    # Forces an Ord onion adjustment (RND -> OPE) that must persist.
    cur.execute("SELECT name FROM emp WHERE salary > ?", (60000,))
    return sorted(row[0] for row in cur.fetchall())


# ---------------------------------------------------------------------------
# the restart path
# ---------------------------------------------------------------------------
def test_connect_catalog_restarts_from_wal(tmp_path, connect_kwargs):
    db_path = os.fspath(tmp_path / "emp.db")
    wal_path = os.fspath(tmp_path / "emp.wal")

    conn = repro.connect(db_path, catalog=wal_path, **connect_kwargs)
    assert _populate(conn) == ["alice", "carol"]
    levels_before = sorted(map(tuple, conn.proxy.schema.catalog_levels()))
    conn.close()

    # A brand-new process: same files, same master key, nothing else.
    conn = repro.connect(db_path, catalog=wal_path, **connect_kwargs)
    try:
        assert sorted(map(tuple, conn.proxy.schema.catalog_levels())) == levels_before
        # The Ord onion stayed at OPE across the restart -- the recovered
        # proxy reads old rows and range-filters without re-adjusting.
        assert ("emp", "salary", "Ord", "OPE") in levels_before
        cur = conn.cursor()
        cur.execute("SELECT name FROM emp WHERE salary > ?", (60000,))
        assert sorted(row[0] for row in cur.fetchall()) == ["alice", "carol"]
        cur.execute("INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)", (4, "dave", 80000))
        cur.execute("SELECT COUNT(*) FROM emp")
        assert cur.fetchall() == [(4,)]
    finally:
        conn.close()


def test_restart_requires_the_same_master_key(tmp_path, connect_kwargs):
    db_path = os.fspath(tmp_path / "emp.db")
    wal_path = os.fspath(tmp_path / "emp.wal")
    conn = repro.connect(db_path, catalog=wal_path, **connect_kwargs)
    _populate(conn)
    conn.close()

    wrong = dict(connect_kwargs, master_key=MasterKey.from_passphrase("not-the-one"))
    conn = repro.connect(db_path, catalog=wal_path, **wrong)
    try:
        cur = conn.cursor()
        # Column keys re-derive from the wrong master key, so decryption of
        # existing ciphertexts cannot produce the stored plaintext: the query
        # either fails outright or returns something other than the answer.
        try:
            cur.execute("SELECT name FROM emp WHERE salary > ?", (60000,))
            rows = sorted(row[0] for row in cur.fetchall())
        except conn.Error:
            rows = None
        assert rows != ["alice", "carol"]
    finally:
        conn.close()


def test_server_restart_path_uses_the_catalog(tmp_path, connect_kwargs):
    """The server builds its proxy from --catalog the same way connect does."""
    from repro.server.server import ReproServer, ServerConfig

    db_path = os.fspath(tmp_path / "srv.db")
    wal_path = os.fspath(tmp_path / "srv.wal")
    conn = repro.connect(db_path, catalog=wal_path, **connect_kwargs)
    _populate(conn)
    conn.close()

    config = ServerConfig(
        backend=db_path,
        proxy_kwargs=dict(connect_kwargs, catalog=wal_path),
    )
    server = ReproServer(config)
    try:
        assert "emp" in server.proxy.schema.tables
        rows = server.proxy.execute("SELECT name FROM emp WHERE salary > 60000").rows
        assert sorted(row[0] for row in rows) == ["alice", "carol"]
    finally:
        server.proxy.close()
        server.proxy.db.close()


# ---------------------------------------------------------------------------
# reattach guard (regression: silently re-opening an encrypted file)
# ---------------------------------------------------------------------------
def test_existing_encrypted_file_without_catalog_is_refused(tmp_path, connect_kwargs):
    db_path = os.fspath(tmp_path / "emp.db")
    wal_path = os.fspath(tmp_path / "emp.wal")
    conn = repro.connect(db_path, catalog=wal_path, **connect_kwargs)
    _populate(conn)
    conn.close()

    with pytest.raises(OperationalError, match="requires catalog="):
        SQLiteBackend(path=db_path)
    with pytest.raises(OperationalError, match="requires catalog="):
        repro.connect(db_path, **connect_kwargs)


def test_reattach_guard_respects_explicit_opt_outs(tmp_path, connect_kwargs):
    db_path = os.fspath(tmp_path / "emp.db")
    conn = repro.connect(db_path, catalog=os.fspath(tmp_path / "emp.wal"), **connect_kwargs)
    _populate(conn)
    conn.close()

    # A fresh path is not "existing", and allow_existing takes responsibility.
    SQLiteBackend(path=os.fspath(tmp_path / "fresh.db")).close()
    backend = SQLiteBackend(path=db_path, allow_existing=True)
    assert backend.table_names()
    backend.close()


# ---------------------------------------------------------------------------
# close() flushes the catalog
# ---------------------------------------------------------------------------
def test_close_flushes_the_catalog_before_releasing_the_backend(tmp_path, connect_kwargs):
    db_path = os.fspath(tmp_path / "emp.db")
    wal_path = os.fspath(tmp_path / "emp.wal")
    conn = repro.connect(db_path, catalog=wal_path, **connect_kwargs)
    _populate(conn)
    conn.close()
    assert conn.closed
    # Every record the proxy wrote is on disk and decodable after close.
    records = WriteAheadLog(wal_path).load()
    assert any(r.get("t") == "create_table" for r in records)
    assert any(r.get("t") in ("meta", "snapshot", "commit") for r in records)


def test_close_is_idempotent_after_a_flush_failure(tmp_path, connect_kwargs, make_proxy):
    db_path = os.fspath(tmp_path / "emp.db")
    wal_path = os.fspath(tmp_path / "emp.wal")
    catalog = MetadataCatalog(wal_path)
    proxy = make_proxy(db=SQLiteBackend(path=db_path), catalog=catalog, **connect_kwargs)
    conn = repro.Connection(proxy, owns_proxy=True, owns_backend=True)
    _populate(conn)

    def broken_sync():
        raise CatalogError("simulated fsync failure")

    catalog.wal.sync = broken_sync
    with pytest.raises(CatalogError):
        conn.close()
    # The failure surfaced exactly once; the proxy detached its catalog
    # first, so closing again is a clean no-op.
    assert proxy.catalog is None
    conn.close()
    conn.close()
    assert conn.closed


def test_catalog_append_after_close_is_refused(tmp_path):
    catalog = MetadataCatalog(os.fspath(tmp_path / "late.wal"))
    catalog.append({"t": "meta", "version": 1})
    catalog.close()
    with pytest.raises(CatalogError):
        catalog.append({"t": "meta", "version": 2})
    catalog.close()  # still idempotent

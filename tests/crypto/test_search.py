"""SEARCH (Song-Wagner-Perrig word search)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.search import SEARCH, SearchCiphertext, extract_keywords
from repro.errors import CryptoError

KEY = b"search-key-bytes"


def test_keyword_extraction():
    assert extract_keywords("Hello, world! hello again.") == ["hello", "world", "hello", "again"]
    assert extract_keywords("") == []


def test_match_and_no_match():
    scheme = SEARCH(KEY)
    ciphertext = scheme.encrypt("the quick brown fox jumps")
    assert SEARCH.matches(ciphertext, scheme.token("fox"))
    assert SEARCH.matches(ciphertext, scheme.token("QUICK"))
    assert not SEARCH.matches(ciphertext, scheme.token("dog"))


def test_duplicates_removed_by_default():
    scheme = SEARCH(KEY)
    ciphertext = scheme.encrypt("spam spam spam eggs")
    assert len(ciphertext.words) == 2


def test_duplicates_kept_when_requested():
    scheme = SEARCH(KEY, keep_duplicates=True)
    ciphertext = scheme.encrypt("spam spam spam eggs")
    assert len(ciphertext.words) == 4


def test_word_ciphertexts_are_randomised():
    scheme = SEARCH(KEY)
    assert scheme.encrypt_word("alice") != scheme.encrypt_word("alice")
    # ...yet both match the same token.
    token = scheme.token("alice")
    ciphertext = SearchCiphertext((scheme.encrypt_word("alice"), scheme.encrypt_word("bob")))
    assert SEARCH.matches(ciphertext, token)


def test_serialization_roundtrip():
    scheme = SEARCH(KEY)
    ciphertext = scheme.encrypt("confidential business plan")
    restored = SearchCiphertext.deserialize(ciphertext.serialize())
    assert SEARCH.matches(restored, scheme.token("business"))
    with pytest.raises(CryptoError):
        SearchCiphertext.deserialize(b"x" * 7)


def test_tokens_are_key_specific():
    ciphertext = SEARCH(KEY).encrypt("alpha beta gamma")
    other = SEARCH(b"another-key-0000")
    assert not SEARCH.matches(ciphertext, other.token("alpha"))


def test_ciphertext_does_not_contain_plaintext():
    scheme = SEARCH(KEY)
    data = scheme.encrypt("topsecret keyword").serialize()
    assert b"topsecret" not in data


@settings(max_examples=25, deadline=None)
@given(words=st.lists(st.text(alphabet="abcdefghij", min_size=1, max_size=8), min_size=1, max_size=8))
def test_every_indexed_word_matches_property(words):
    scheme = SEARCH(KEY)
    ciphertext = scheme.encrypt(" ".join(words))
    for word in words:
        assert SEARCH.matches(ciphertext, scheme.token(word))


# ---------------------------------------------------------------------------
# Conformance-harness satellites: duplicates, unicode, false positives.
# ---------------------------------------------------------------------------
def test_duplicate_word_tokenization_still_matches():
    """Dedup (the §5 default) must not affect which tokens match."""
    scheme = SEARCH(KEY)
    assert extract_keywords("spam, Spam! SPAM eggs spam") == [
        "spam", "spam", "spam", "eggs", "spam"
    ]
    ciphertext = scheme.encrypt("spam, Spam! SPAM eggs spam")
    # One word ciphertext per distinct keyword...
    assert len(ciphertext.words) == 2
    # ...and both the duplicated and the singleton word still match.
    assert SEARCH.matches(ciphertext, scheme.token("spam"))
    assert SEARCH.matches(ciphertext, scheme.token("SPAM"))
    assert SEARCH.matches(ciphertext, scheme.token("eggs"))
    assert not SEARCH.matches(ciphertext, scheme.token("ham"))


def test_unicode_words_roundtrip_through_tokens():
    scheme = SEARCH(KEY)
    text = "Grüße aus München 東京 und Αθήνα"
    keywords = extract_keywords(text)
    assert "grüße" in keywords and "münchen" in keywords
    ciphertext = SearchCiphertext.deserialize(scheme.encrypt(text).serialize())
    for word in ("grüße", "münchen", "東京", "αθήνα"):
        assert SEARCH.matches(ciphertext, scheme.token(word)), word
    for absent in ("tokyo", "athen", "grüsse", "ößü"):
        assert not SEARCH.matches(ciphertext, scheme.token(absent)), absent


def test_absent_words_never_false_positive():
    """SWP matching is exact: a token for an unindexed word matches nothing.

    This is what keeps the differential harness sound -- the plaintext
    lanes' LIKE and the encrypted lanes' SEARCH_MATCH must agree exactly,
    so the scheme cannot afford bloom-filter-style false positives.
    """
    scheme = SEARCH(KEY)
    indexed = [f"word{i:03d}" for i in range(40)]
    ciphertexts = [scheme.encrypt(" ".join(indexed[i : i + 4])) for i in range(0, 40, 4)]
    probes = [f"absent{i:03d}" for i in range(150)] + ["word", "word0", "word0000"]
    for probe in probes:
        token = scheme.token(probe)
        for ciphertext in ciphertexts:
            assert not SEARCH.matches(ciphertext, token), probe


@settings(max_examples=20, deadline=None)
@given(
    words=st.lists(
        st.text(alphabet="abcdefghij", min_size=1, max_size=8),
        min_size=1, max_size=6, unique=True,
    ),
    absent=st.text(alphabet="qrstuvwxyz", min_size=1, max_size=8),
)
def test_absent_word_property(words, absent):
    scheme = SEARCH(KEY)
    ciphertext = scheme.encrypt(" ".join(words))
    assert not SEARCH.matches(ciphertext, scheme.token(absent))

"""Hypergeometric sampler: support bounds, determinism, degenerate cases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hgd import hypergeometric_sample
from repro.crypto.prf import DeterministicStream
from repro.errors import CryptoError


def _coins(label: bytes = b"x") -> DeterministicStream:
    return DeterministicStream(b"hgd-test-key", label)


def test_degenerate_cases():
    assert hypergeometric_sample(0, 10, 10, _coins()) == 0
    assert hypergeometric_sample(5, 0, 10, _coins()) == 0
    assert hypergeometric_sample(10, 10, 0, _coins()) == 10
    assert hypergeometric_sample(20, 10, 10, _coins()) == 10


def test_determinism():
    assert hypergeometric_sample(50, 30, 70, _coins(b"a")) == hypergeometric_sample(
        50, 30, 70, _coins(b"a")
    )


def test_rejects_invalid_parameters():
    with pytest.raises(CryptoError):
        hypergeometric_sample(-1, 5, 5, _coins())
    with pytest.raises(CryptoError):
        hypergeometric_sample(30, 10, 10, _coins())


def test_large_parameters_use_normal_approximation():
    draws = 2**40
    good = 2**20
    bad = 2**41 - 2**20 - draws + 2**40  # keep total >= draws
    value = hypergeometric_sample(draws, good, bad, _coins(b"large"))
    assert max(0, draws - bad) <= value <= min(draws, good)


def test_mean_is_plausible():
    """The sample mean should sit near draws * good / total."""
    draws, good, bad = 200, 100, 100
    samples = [
        hypergeometric_sample(draws, good, bad, _coins(str(i).encode())) for i in range(200)
    ]
    mean = sum(samples) / len(samples)
    assert 90 < mean < 110


@settings(max_examples=80, deadline=None)
@given(
    draws=st.integers(min_value=0, max_value=10_000),
    good=st.integers(min_value=0, max_value=10_000),
    bad=st.integers(min_value=0, max_value=10_000),
    label=st.binary(min_size=1, max_size=8),
)
def test_support_bounds_property(draws, good, bad, label):
    total = good + bad
    if draws > total:
        draws = total
    value = hypergeometric_sample(draws, good, bad, _coins(label))
    assert max(0, draws - bad) <= value <= min(draws, good)

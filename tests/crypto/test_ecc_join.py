"""Elliptic-curve group and the JOIN / JOIN-ADJ adjustable join."""

import pytest

from repro.crypto import ecc
from repro.crypto.join_adj import JOIN, JoinAdj, JoinCiphertext, adjust, derive_scalar
from repro.errors import CryptoError

MASTER = b"join-master-key!"


def test_generator_is_on_curve():
    assert ecc.is_on_curve(ecc.GENERATOR)


def test_point_addition_and_doubling_stay_on_curve():
    doubled = ecc.point_add(ecc.GENERATOR, ecc.GENERATOR)
    tripled = ecc.point_add(doubled, ecc.GENERATOR)
    assert ecc.is_on_curve(doubled) and ecc.is_on_curve(tripled)
    assert doubled != tripled


def test_scalar_multiplication_matches_repeated_addition():
    by_addition = ecc.INFINITY
    for _ in range(7):
        by_addition = ecc.point_add(by_addition, ecc.GENERATOR)
    assert ecc.scalar_multiply(7, ecc.GENERATOR) == by_addition


def test_group_order():
    assert ecc.scalar_multiply(ecc.ORDER, ecc.GENERATOR) == ecc.INFINITY
    assert ecc.scalar_multiply(0, ecc.GENERATOR) == ecc.INFINITY


def test_point_serialization_roundtrip():
    point = ecc.scalar_multiply(123456789, ecc.GENERATOR)
    assert ecc.Point.deserialize(point.serialize()) == point
    with pytest.raises(CryptoError):
        ecc.Point.deserialize(b"\x04" + b"\x00" * 48)


def test_join_adj_deterministic_per_column():
    adj = JoinAdj.for_column(MASTER, "t1", "a")
    assert adj.hash_value(b"42") == adj.hash_value(b"42")
    assert adj.hash_value(b"42") != adj.hash_value(b"43")


def test_join_adj_columns_not_joinable_without_adjustment():
    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    assert a.hash_value(b"42") != b.hash_value(b"42")


def test_join_adjustment_aligns_columns():
    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    delta = b.delta_to(a)
    assert adjust(b.hash_value(b"42"), delta) == a.hash_value(b"42")
    assert adjust(b.hash_value(b"other"), delta) == a.hash_value(b"other")
    # Non-equal values still do not collide after adjustment.
    assert adjust(b.hash_value(b"42"), delta) != a.hash_value(b"43")


def test_join_adjustment_is_transitive():
    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    c = JoinAdj.for_column(MASTER, "t3", "c")
    to_a_from_b = b.delta_to(a)
    to_a_from_c = c.delta_to(a)
    assert adjust(b.hash_value(b"v"), to_a_from_b) == adjust(c.hash_value(b"v"), to_a_from_c)


def test_full_join_scheme_roundtrip():
    scheme = JOIN(MASTER, "t1", "a")
    ciphertext = scheme.encrypt(b"hello")
    assert scheme.decrypt(ciphertext) == b"hello"
    restored = JoinCiphertext.deserialize(ciphertext.serialize())
    assert restored == ciphertext
    with pytest.raises(CryptoError):
        JoinCiphertext.deserialize(b"short")


def test_derive_scalar_in_group_range():
    scalar = derive_scalar(MASTER, "t", "c")
    assert 1 <= scalar < ecc.ORDER

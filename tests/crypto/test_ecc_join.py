"""Elliptic-curve group and the JOIN / JOIN-ADJ adjustable join."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecc
from repro.crypto.join_adj import (
    JOIN,
    JoinAdj,
    JoinCiphertext,
    adjust,
    adjust_many,
    derive_scalar,
)
from repro.errors import CryptoError

MASTER = b"join-master-key!"


def _affine_multiply(scalar: int, point: ecc.Point) -> ecc.Point:
    """Reference double-and-add over the affine formulas (the old hot path)."""
    scalar %= ecc.ORDER
    result = ecc.INFINITY
    addend = point
    while scalar:
        if scalar & 1:
            result = ecc.point_add(result, addend)
        addend = ecc.point_add(addend, addend)
        scalar >>= 1
    return result


def test_generator_is_on_curve():
    assert ecc.is_on_curve(ecc.GENERATOR)


def test_point_addition_and_doubling_stay_on_curve():
    doubled = ecc.point_add(ecc.GENERATOR, ecc.GENERATOR)
    tripled = ecc.point_add(doubled, ecc.GENERATOR)
    assert ecc.is_on_curve(doubled) and ecc.is_on_curve(tripled)
    assert doubled != tripled


def test_scalar_multiplication_matches_repeated_addition():
    by_addition = ecc.INFINITY
    for _ in range(7):
        by_addition = ecc.point_add(by_addition, ecc.GENERATOR)
    assert ecc.scalar_multiply(7, ecc.GENERATOR) == by_addition


def test_group_order():
    assert ecc.scalar_multiply(ecc.ORDER, ecc.GENERATOR) == ecc.INFINITY
    assert ecc.scalar_multiply(0, ecc.GENERATOR) == ecc.INFINITY


def test_point_serialization_roundtrip():
    point = ecc.scalar_multiply(123456789, ecc.GENERATOR)
    assert ecc.Point.deserialize(point.serialize()) == point
    with pytest.raises(CryptoError):
        ecc.Point.deserialize(b"\x04" + b"\x00" * 48)


@settings(max_examples=25, deadline=None)
@given(scalar=st.integers(min_value=0, max_value=2 * ecc.ORDER))
def test_jacobian_base_multiply_matches_affine(scalar):
    assert ecc.scalar_multiply(scalar, ecc.GENERATOR) == _affine_multiply(
        scalar, ecc.GENERATOR
    )


@settings(max_examples=15, deadline=None)
@given(
    point_scalar=st.integers(min_value=1, max_value=ecc.ORDER - 1),
    scalar=st.integers(min_value=0, max_value=ecc.ORDER - 1),
)
def test_jacobian_wnaf_multiply_matches_affine(point_scalar, scalar):
    point = ecc.scalar_multiply_base(point_scalar)
    expected = _affine_multiply(scalar, point)
    assert ecc.scalar_multiply(scalar, point) == expected
    assert ecc.is_on_curve(expected)


def test_scalar_multiply_edge_cases():
    point = ecc.scalar_multiply_base(987654321)
    # Infinity in, infinity out.
    assert ecc.scalar_multiply(12345, ecc.INFINITY) == ecc.INFINITY
    assert ecc.scalar_multiply(0, point) == ecc.INFINITY
    assert ecc.scalar_multiply(ecc.ORDER, point) == ecc.INFINITY
    # P + P (the Jacobian add must fall through to the doubling formula).
    assert ecc.point_add(point, point) == ecc.scalar_multiply(2, point)
    # P + (-P) = infinity.
    assert point.y is not None
    negated = ecc.Point(point.x, (-point.y) % ecc.P)
    assert ecc.point_add(point, negated) == ecc.INFINITY
    assert ecc.scalar_multiply(ecc.ORDER - 1, point) == negated


def test_batch_base_multiply_matches_scalar_path():
    scalars = [0, 1, 2, ecc.ORDER - 1, ecc.ORDER, 31337, 2**191]
    batch = ecc.scalar_multiply_base_many(scalars)
    assert batch == [ecc.scalar_multiply(s, ecc.GENERATOR) for s in scalars]


def test_batch_point_multiply_matches_scalar_path():
    points = [ecc.scalar_multiply_base(s) for s in (7, 11, 13)] + [ecc.INFINITY]
    delta = 0xDEADBEEFCAFE
    batch = ecc.scalar_multiply_many(delta, points)
    assert batch == [ecc.scalar_multiply(delta, p) for p in points]
    assert ecc.scalar_multiply_many(delta, []) == []


def test_batch_modinv_matches_modinv():
    values = [1, 2, 3, ecc.P - 1, 0xABCDEF]
    assert ecc.batch_modinv(values, ecc.P) == [
        ecc.modinv(v, ecc.P) for v in values
    ]
    assert ecc.batch_modinv([], ecc.P) == []
    with pytest.raises(CryptoError):
        ecc.batch_modinv([5, ecc.P], ecc.P)


def test_join_adj_deterministic_per_column():
    adj = JoinAdj.for_column(MASTER, "t1", "a")
    assert adj.hash_value(b"42") == adj.hash_value(b"42")
    assert adj.hash_value(b"42") != adj.hash_value(b"43")


def test_join_adj_columns_not_joinable_without_adjustment():
    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    assert a.hash_value(b"42") != b.hash_value(b"42")


def test_join_adjustment_aligns_columns():
    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    delta = b.delta_to(a)
    assert adjust(b.hash_value(b"42"), delta) == a.hash_value(b"42")
    assert adjust(b.hash_value(b"other"), delta) == a.hash_value(b"other")
    # Non-equal values still do not collide after adjustment.
    assert adjust(b.hash_value(b"42"), delta) != a.hash_value(b"43")


def test_join_adjustment_is_transitive():
    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    c = JoinAdj.for_column(MASTER, "t3", "c")
    to_a_from_b = b.delta_to(a)
    to_a_from_c = c.delta_to(a)
    assert adjust(b.hash_value(b"v"), to_a_from_b) == adjust(c.hash_value(b"v"), to_a_from_c)


def test_full_join_scheme_roundtrip():
    scheme = JOIN(MASTER, "t1", "a")
    ciphertext = scheme.encrypt(b"hello")
    assert scheme.decrypt(ciphertext) == b"hello"
    restored = JoinCiphertext.deserialize(ciphertext.serialize())
    assert restored == ciphertext
    with pytest.raises(CryptoError):
        JoinCiphertext.deserialize(b"short")


def test_hash_values_batch_matches_scalar_path():
    adj = JoinAdj.for_column(MASTER, "t1", "a")
    values = [b"1", b"2", b"1", b"zzz"]
    assert adj.hash_values(values) == [adj.hash_value(v) for v in values]
    assert adj.hash_values([]) == []


def test_adjust_many_matches_scalar_adjust():
    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    delta = b.delta_to(a)
    hashes = [b.hash_value(value) for value in (b"x", b"y", b"z")]
    assert adjust_many(hashes, delta) == [adjust(h, delta) for h in hashes]
    assert adjust_many(hashes, delta) == [a.hash_value(v) for v in (b"x", b"y", b"z")]


def test_derive_scalar_in_group_range():
    scalar = derive_scalar(MASTER, "t", "c")
    assert 1 <= scalar < ecc.ORDER

"""OPE: order preservation, round trips, determinism, caching."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.core.encryptor import _INT32_OFFSET
from repro.crypto.ope import OPE
from repro.errors import CryptoError

KEY = b"ope-key-16-bytes"


@pytest.fixture(scope="module")
def small_ope():
    return OPE(KEY, plaintext_bits=16, ciphertext_bits=32)


def test_order_preservation_on_sorted_sample(small_ope):
    values = [0, 1, 5, 17, 100, 1000, 30000, 65535]
    ciphertexts = [small_ope.encrypt(v) for v in values]
    assert ciphertexts == sorted(ciphertexts)
    assert len(set(ciphertexts)) == len(ciphertexts)


def test_roundtrip(small_ope):
    for value in (0, 1, 12345, 65535):
        assert small_ope.decrypt(small_ope.encrypt(value)) == value


def test_determinism_across_instances():
    a = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    b = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    assert [a.encrypt(v) for v in (3, 999, 40000)] == [b.encrypt(v) for v in (3, 999, 40000)]


def test_different_keys_differ():
    a = OPE(b"key-a" * 4, plaintext_bits=16, ciphertext_bits=32)
    b = OPE(b"key-b" * 4, plaintext_bits=16, ciphertext_bits=32)
    assert [a.encrypt(v) for v in range(10)] != [b.encrypt(v) for v in range(10)]


def test_default_32_to_64_bit_parameters():
    ope = OPE(KEY)
    values = [0, 7, 2**16, 2**31, 2**32 - 1]
    ciphertexts = [ope.encrypt(v) for v in values]
    assert ciphertexts == sorted(ciphertexts)
    assert all(ope.decrypt(c) == v for v, c in zip(values, ciphertexts))


def test_cache_behaviour():
    ope = OPE(KEY, plaintext_bits=16, ciphertext_bits=32, cache=True)
    ope.encrypt(42)
    assert ope.cache_size == 1
    ope.encrypt(42)
    assert ope.cache_size == 1
    ope.clear_cache()
    assert ope.cache_size == 0
    uncached = OPE(KEY, plaintext_bits=16, ciphertext_bits=32, cache=False)
    uncached.encrypt(42)
    assert uncached.cache_size == 0


def test_batch_encryption_preserves_order():
    ope = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    values = list(range(0, 2000, 37))
    assert ope.encrypt_batch(values) == sorted(ope.encrypt_batch(values))


def test_rejects_out_of_range_inputs(small_ope):
    with pytest.raises(CryptoError):
        small_ope.encrypt(-1)
    with pytest.raises(CryptoError):
        small_ope.encrypt(1 << 16)
    with pytest.raises(CryptoError):
        small_ope.decrypt(1 << 32)
    with pytest.raises(CryptoError):
        OPE(KEY, plaintext_bits=32, ciphertext_bits=32)


def test_invalid_ciphertext_detected(small_ope):
    ciphertext = small_ope.encrypt(500)
    # A ciphertext that is not the image of any plaintext should be rejected.
    with pytest.raises(CryptoError):
        for candidate in range(ciphertext + 1, ciphertext + 50):
            fresh = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
            fresh.decrypt(candidate)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=65535), min_size=2, max_size=20, unique=True))
def test_order_preservation_property(values):
    ope = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    ciphertexts = {v: ope.encrypt(v) for v in values}
    ordered = sorted(values)
    for smaller, larger in zip(ordered, ordered[1:]):
        assert ciphertexts[smaller] < ciphertexts[larger]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=65535))
def test_roundtrip_property(value):
    ope = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    assert ope.decrypt(ope.encrypt(value)) == value


# ---------------------------------------------------------------------------
# Conformance-harness satellites: adjacency, boundaries, signed encoding.
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@example(value=0)
@example(value=65534)
@given(value=st.integers(min_value=0, max_value=65534))
def test_adjacent_plaintexts_strictly_ordered(value):
    """x < x+1 must hold as *strict* ciphertext order, even at the edges."""
    ope = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    assert ope.encrypt(value) < ope.encrypt(value + 1)


def test_domain_boundary_roundtrip_and_order():
    ope = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    lo, hi = 0, ope.domain_size - 1
    assert ope.decrypt(ope.encrypt(lo)) == lo
    assert ope.decrypt(ope.encrypt(hi)) == hi
    assert ope.encrypt(lo) < ope.encrypt(1) <= ope.encrypt(hi - 1) < ope.encrypt(hi)
    # Ciphertexts of the extreme plaintexts stay inside the declared range.
    assert 0 <= ope.encrypt(lo)
    assert ope.encrypt(hi) < ope.range_size


@settings(max_examples=20, deadline=None)
@example(a=-(1 << 31), b=(1 << 31) - 1)
@example(a=-1, b=0)
@example(a=-2, b=-1)
@given(
    a=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    b=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
)
def test_signed_integers_preserve_order_through_offset_encoding(a, b):
    """Negative application values ride OPE via the encryptor's +2^31 offset.

    The proxy encodes signed INT columns as ``value + _INT32_OFFSET`` before
    OPE (see Encryptor._to_ope_int); order and round-trip must survive the
    combined encoding across the full signed 32-bit domain.
    """
    if a == b:
        b = a + 1 if a < (1 << 31) - 1 else a - 1
    ope = OPE(KEY, plaintext_bits=32, ciphertext_bits=48)
    low, high = sorted((a, b))
    low_ct = ope.encrypt(low + _INT32_OFFSET)
    high_ct = ope.encrypt(high + _INT32_OFFSET)
    assert low_ct < high_ct
    assert ope.decrypt(low_ct) - _INT32_OFFSET == low
    assert ope.decrypt(high_ct) - _INT32_OFFSET == high


@settings(max_examples=30, deadline=None)
@example(value=0)
@example(value=65535)
@given(value=st.integers(min_value=0, max_value=65535))
def test_roundtrip_is_exact_at_boundaries(value):
    ope = OPE(KEY, plaintext_bits=16, ciphertext_bits=32)
    ciphertext = ope.encrypt(value)
    assert ope.decrypt(ciphertext) == value

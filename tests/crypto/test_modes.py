"""Block cipher modes: CBC, CMC and CTR used by RND and DET."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import modes
from repro.crypto.aes import AES
from repro.crypto.primitives import pkcs7_pad, pkcs7_unpad, xor_bytes
from repro.errors import CryptoError

KEY = b"0123456789abcdef"
IV = b"\x01" * 16


def test_cbc_roundtrip():
    cipher = AES(KEY)
    for message in (b"", b"short", b"exactly sixteen!", b"a longer message spanning blocks"):
        assert modes.cbc_decrypt(cipher, IV, modes.cbc_encrypt(cipher, IV, message)) == message


def test_cbc_is_probabilistic_across_ivs():
    cipher = AES(KEY)
    message = b"same message"
    assert modes.cbc_encrypt(cipher, IV, message) != modes.cbc_encrypt(cipher, b"\x02" * 16, message)


def test_cbc_requires_matching_iv_size():
    with pytest.raises(CryptoError):
        modes.cbc_encrypt(AES(KEY), b"short iv", b"data")


def test_cmc_roundtrip_and_determinism():
    cipher = AES(KEY)
    message = b"deterministic encryption input"
    first = modes.cmc_encrypt(cipher, message)
    second = modes.cmc_encrypt(cipher, message)
    assert first == second
    assert modes.cmc_decrypt(cipher, first) == message


def test_cmc_hides_shared_prefixes():
    """Unlike plain CBC with a fixed IV, CMC must not leak long shared prefixes."""
    cipher = AES(KEY)
    prefix = b"A" * 32
    first = modes.cmc_encrypt(cipher, prefix + b"ending-one....")
    second = modes.cmc_encrypt(cipher, prefix + b"ending-two....")
    assert first[:16] != second[:16]


def test_ctr_roundtrip_and_symmetry():
    cipher = AES(KEY)
    message = b"counter mode payload of arbitrary length!"
    ciphertext = modes.ctr_transform(cipher, b"nonce0000000", message)
    assert modes.ctr_transform(cipher, b"nonce0000000", ciphertext) == message


def test_pkcs7_padding_roundtrip_and_validation():
    padded = pkcs7_pad(b"abc", 16)
    assert len(padded) == 16
    assert pkcs7_unpad(padded, 16) == b"abc"
    with pytest.raises(CryptoError):
        pkcs7_unpad(b"\x00" * 16, 16)
    with pytest.raises(CryptoError):
        pkcs7_unpad(b"not a multiple", 16)


def test_xor_bytes_requires_equal_lengths():
    with pytest.raises(CryptoError):
        xor_bytes(b"ab", b"abc")


@settings(max_examples=30, deadline=None)
@given(message=st.binary(min_size=0, max_size=200))
def test_cbc_roundtrip_property(message):
    cipher = AES(KEY)
    assert modes.cbc_decrypt(cipher, IV, modes.cbc_encrypt(cipher, IV, message)) == message


@settings(max_examples=30, deadline=None)
@given(message=st.binary(min_size=0, max_size=200))
def test_cmc_roundtrip_property(message):
    cipher = AES(KEY)
    assert modes.cmc_decrypt(cipher, modes.cmc_encrypt(cipher, message)) == message

"""Packed HOM slots (§8.4): codec edge cases and packed/scalar equivalence.

The slot layout is ``[count: h+1 bits][value: v+h bits]`` per slot, values
offset-encoded so signed data never borrows across slot boundaries under
homomorphic addition.  These tests pin the codec's arithmetic (negative
values, range limits, NULL slots, delta encoding) and the overflow contract:
exactly ``chunk_rows`` rows may be summed into one ciphertext, after which
the aggregate must close the chunk (multi-chunk partial-sum blobs).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import (
    PackingConfig,
    PaillierKeyPair,
    decode_partial_sums,
    encode_partial_sums,
    is_partial_sum_blob,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return PaillierKeyPair.generate(512)


CONFIG = PackingConfig(value_bits=32, headroom_bits=4)


# ---------------------------------------------------------------------------
# plain codec (no crypto)
# ---------------------------------------------------------------------------
def test_layout_widths():
    assert CONFIG.value_width == 36
    assert CONFIG.count_width == 5
    assert CONFIG.slot_width == 41
    assert CONFIG.chunk_rows == 16
    assert CONFIG.offset == 1 << 31


def test_slots_for_modulus():
    assert CONFIG.slots_for(1 << 512) == 511 // 41
    default = PackingConfig()
    assert default.slot_width == 97
    assert default.slots_for(1 << 1024) == 10
    with pytest.raises(CryptoError):
        CONFIG.slots_for(1 << 40)  # smaller than one slot


def test_signed_roundtrip_all_slots():
    values = [0, -1, CONFIG.offset - 1, -CONFIG.offset, 7]
    cell = CONFIG.encode_cell(values)
    for slot, value in enumerate(values):
        assert CONFIG.decode_cell(cell, slot) == value
        assert CONFIG.decode_slot(cell, slot) == (1, value)


def test_null_slots_decode_to_none():
    cell = CONFIG.encode_cell([None, 42, None])
    assert CONFIG.decode_cell(cell, 0) is None
    assert CONFIG.decode_cell(cell, 1) == 42
    assert CONFIG.decode_cell(cell, 2) is None
    assert CONFIG.decode_slot(cell, 0) == (0, 0)


def test_out_of_range_values_refused():
    with pytest.raises(CryptoError):
        CONFIG.encode_cell([CONFIG.offset])
    with pytest.raises(CryptoError):
        CONFIG.encode_cell([-CONFIG.offset - 1])
    with pytest.raises(CryptoError):
        CONFIG.encode_delta(CONFIG.offset, 0, 1 << 512)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.none(),
            st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_codec_roundtrip_property(values):
    cell = CONFIG.encode_cell(values)
    for slot, value in enumerate(values):
        assert CONFIG.decode_cell(cell, slot) == value


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(
            st.one_of(
                st.none(),
                st.integers(min_value=-1000, max_value=1000),
            ),
            min_size=3,
            max_size=3,
        ),
        min_size=1,
        max_size=16,  # == CONFIG.chunk_rows: the legal per-chunk maximum
    )
)
def test_plaintext_sum_matches_scalar_sum(rows):
    """Adding encoded cells in the integers == per-slot (count, sum) pairs."""
    total = sum(CONFIG.encode_cell(row) for row in rows)
    for slot in range(3):
        column = [row[slot] for row in rows if row[slot] is not None]
        assert CONFIG.decode_slot(total, slot) == (len(column), sum(column))


# ---------------------------------------------------------------------------
# overflow at the headroom boundary
# ---------------------------------------------------------------------------
def test_overflow_after_exactly_chunk_rows():
    """chunk_rows rows sum cleanly; one more can corrupt the next subfield.

    Each encoded value is ``v + offset < 2^value_bits``, and the value
    subfield carries ``headroom_bits`` spare bits, so sums of up to
    ``2^headroom_bits`` maximal rows fit exactly.  Row ``chunk_rows + 1``
    can carry out of the value subfield into the count subfield -- which is
    why the SUM aggregate must close its chunk at ``chunk_rows``, never
    later.
    """
    tiny = PackingConfig(value_bits=8, headroom_bits=2)  # chunk_rows == 4
    maximal = tiny.offset - 1  # 127: encodes to all-ones, no spare room
    rows = [tiny.encode_cell([maximal, 5]) for _ in range(tiny.chunk_rows)]
    total = sum(rows)
    assert tiny.decode_slot(total, 0) == (4, 4 * maximal)
    assert tiny.decode_slot(total, 1) == (4, 20)
    overflowed = total + tiny.encode_cell([maximal, 5])
    count, value = tiny.decode_slot(overflowed, 0)
    assert (count, value) != (5, 5 * maximal)
    assert count == 6  # the value subfield carried into the count subfield


def test_delta_encoding_is_additive(keypair):
    """encode_delta shifts an increment into one slot without borrow."""
    n = keypair.public.n
    cell = CONFIG.encode_cell([10, -10, None])
    stored = (cell + CONFIG.encode_delta(-25, 0, n)) % n
    stored = (stored + CONFIG.encode_delta(40, 1, n)) % n
    assert CONFIG.decode_cell(stored, 0) == -15
    assert CONFIG.decode_cell(stored, 1) == 30
    assert CONFIG.decode_cell(stored, 2) is None


# ---------------------------------------------------------------------------
# encrypted paths
# ---------------------------------------------------------------------------
def test_encrypt_packed_roundtrip(keypair):
    values = [123, None, -456]
    ciphertext = keypair.encrypt_packed(values, CONFIG)
    decoded = keypair.decrypt_packed(ciphertext, len(values), CONFIG)
    assert decoded == [(1, 123), (0, 0), (1, -456)]


def test_encrypt_packed_many_matches_singles(keypair):
    rows = [[1, 2], [None, -3], [4, None]]
    batch = keypair.encrypt_packed_many(rows, CONFIG)
    for ciphertext, row in zip(batch, rows):
        plaintext = keypair.decrypt(ciphertext)
        for slot, value in enumerate(row):
            assert CONFIG.decode_cell(plaintext, slot) == value


def test_homomorphic_packed_sum(keypair):
    n_sq = keypair.public.n_squared
    rows = [[5, -2], [None, 7], [3, None], [-1, -1]]
    product = 1
    for row in rows:
        product = (product * keypair.encrypt_packed(row, CONFIG)) % n_sq
    assert keypair.decrypt_packed_sum(product, 0, CONFIG) == (3, 7)
    assert keypair.decrypt_packed_sum(product, 1, CONFIG) == (3, 4)


def test_partial_sum_blob_roundtrip(keypair):
    parts = [keypair.encrypt_packed([i], CONFIG) for i in (1, 2, 3)]
    blob = encode_partial_sums(parts)
    assert is_partial_sum_blob(blob)
    assert not is_partial_sum_blob(b"nope")
    assert not is_partial_sum_blob(12345)
    assert decode_partial_sums(blob) == parts
    # decrypt_packed_sum adds the per-slot pairs across all partials.
    assert keypair.decrypt_packed_sum(blob, 0, CONFIG) == (3, 6)
    with pytest.raises(CryptoError):
        decode_partial_sums(blob + b"x")

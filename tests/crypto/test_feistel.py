"""The 64-bit Feistel PRP standing in for Blowfish."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.feistel import FeistelPRP
from repro.errors import CryptoError


def test_roundtrip_bytes():
    prp = FeistelPRP(b"key material")
    block = b"8 bytes!"
    assert prp.decrypt_block(prp.encrypt_block(block)) == block


def test_roundtrip_int():
    prp = FeistelPRP(b"key material")
    for value in (0, 1, 2**32, 2**64 - 1):
        assert prp.decrypt_int(prp.encrypt_int(value)) == value


def test_is_deterministic():
    prp = FeistelPRP(b"key material")
    assert prp.encrypt_int(42) == prp.encrypt_int(42)


def test_different_keys_differ():
    assert FeistelPRP(b"key-a").encrypt_int(42) != FeistelPRP(b"key-b").encrypt_int(42)


def test_is_injective_on_sample():
    prp = FeistelPRP(b"key material")
    outputs = {prp.encrypt_int(v) for v in range(500)}
    assert len(outputs) == 500


def test_configurable_block_size():
    prp = FeistelPRP(b"key", block_size=16)
    block = bytes(range(16))
    assert prp.decrypt_block(prp.encrypt_block(block)) == block


def test_rejects_invalid_parameters():
    with pytest.raises(CryptoError):
        FeistelPRP(b"")
    with pytest.raises(CryptoError):
        FeistelPRP(b"k", block_size=3)
    with pytest.raises(CryptoError):
        FeistelPRP(b"k", rounds=2)
    with pytest.raises(CryptoError):
        FeistelPRP(b"k").encrypt_int(2**64)
    with pytest.raises(CryptoError):
        FeistelPRP(b"k").encrypt_block(b"wrong size")


@settings(max_examples=50, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**64 - 1), key=st.binary(min_size=1, max_size=32))
def test_roundtrip_property(value, key):
    prp = FeistelPRP(key)
    assert prp.decrypt_int(prp.encrypt_int(value)) == value

"""AES block cipher: FIPS-197 vectors, round trips, error handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.errors import CryptoError


def test_fips197_aes128_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(plaintext).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_fips197_aes192_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(plaintext).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"


def test_fips197_aes256_vector():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(plaintext).hex() == "8ea2b7ca516745bfeafc49904b496089"


def test_fips197_decrypt_vectors_all_key_sizes():
    """The inverse T-table cipher against the FIPS-197 appendix C vectors."""
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    vectors = [
        ("000102030405060708090a0b0c0d0e0f",
         "69c4e0d86a7b0430d8cdb78070b4c55a"),
        ("000102030405060708090a0b0c0d0e0f1011121314151617",
         "dda97ca4864cdfe06eaf70a0ec0d7191"),
        ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
         "8ea2b7ca516745bfeafc49904b496089"),
    ]
    for key_hex, ciphertext_hex in vectors:
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.decrypt_block(bytes.fromhex(ciphertext_hex)) == plaintext


def test_fips197_appendix_b_vector():
    """The worked example of FIPS-197 appendix B."""
    cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    assert cipher.encrypt_block(plaintext).hex() == "3925841d02dc09fbdc118597196a0b32"


def test_decrypt_inverts_encrypt():
    cipher = AES(b"0123456789abcdef")
    block = bytes(range(16))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=24, max_size=24), block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property_192(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=32, max_size=32), block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property_256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_rejects_bad_key_length():
    with pytest.raises(CryptoError):
        AES(b"short")


def test_rejects_bad_block_length():
    cipher = AES(b"0123456789abcdef")
    with pytest.raises(CryptoError):
        cipher.encrypt_block(b"too short")
    with pytest.raises(CryptoError):
        cipher.decrypt_block(b"x" * 17)


def test_different_keys_give_different_ciphertexts():
    block = b"A" * 16
    assert AES(b"k" * 16).encrypt_block(block) != AES(b"j" * 16).encrypt_block(block)


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=20, deadline=None)
@given(block=st.binary(min_size=16, max_size=16))
def test_encryption_is_a_permutation(block):
    cipher = AES(b"fixedfixedfixed!")
    encrypted = cipher.encrypt_block(block)
    assert len(encrypted) == 16
    # A permutation never maps two distinct inputs to the same output; check
    # the contrapositive on a perturbed block.
    perturbed = bytes([block[0] ^ 1]) + block[1:]
    assert cipher.encrypt_block(perturbed) != encrypted

"""Paillier (HOM): round trips, additive homomorphism, randomness pool."""

import secrets

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.numbers import generate_prime, is_probable_prime, modinv
from repro.crypto.paillier import Paillier, PaillierKeyPair, PaillierPrivateKey
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return PaillierKeyPair.generate(512)


@pytest.fixture(scope="module")
def plain_keypair(keypair):
    """The same key without its prime factors: forces the lambda/mu path."""
    private = PaillierPrivateKey(keypair.private.lam, keypair.private.mu)
    assert private.p == 0  # no factors -> no CRT
    return PaillierKeyPair(keypair.public, private)


def test_roundtrip(keypair):
    for value in (0, 1, 12345, 2**40):
        assert keypair.decrypt(keypair.encrypt(value)) == value


def test_encryption_is_probabilistic(keypair):
    assert keypair.encrypt(77) != keypair.encrypt(77)


def test_homomorphic_addition(keypair):
    hom = Paillier(keypair.public)
    ciphertext = hom.add(keypair.encrypt(1234), keypair.encrypt(4321))
    assert keypair.decrypt(ciphertext) == 5555


def test_add_plain_constant(keypair):
    hom = Paillier(keypair.public)
    assert keypair.decrypt(hom.add_plain(keypair.encrypt(100), 23)) == 123


def test_sum_aggregate(keypair):
    hom = Paillier(keypair.public)
    values = [3, 14, 159, 2653]
    total = hom.sum([keypair.encrypt(v) for v in values])
    assert keypair.decrypt(total) == sum(values)


def test_sum_of_nothing_is_zero(keypair):
    hom = Paillier(keypair.public)
    assert keypair.decrypt(hom.sum([])) == 0


def test_randomness_pool(keypair):
    keypair.precompute_randomness(3)
    assert keypair.randomness_pool_size >= 3
    before = keypair.randomness_pool_size
    keypair.encrypt(5)
    assert keypair.randomness_pool_size == before - 1


def test_generated_key_retains_factors(keypair):
    private = keypair.private
    assert private.p > 1 and private.q > 1
    assert private.p * private.q == keypair.public.n


def test_crt_decrypt_equals_plain_decrypt(keypair, plain_keypair):
    for value in (0, 1, 2**40, keypair.public.n - 1):
        ciphertext = keypair.encrypt(value)
        assert keypair.decrypt(ciphertext) == plain_keypair.decrypt(ciphertext)
        assert keypair.decrypt(ciphertext) == value


@settings(max_examples=25, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**60))
def test_crt_decrypt_equivalence_property(keypair, plain_keypair, value):
    ciphertext = plain_keypair.encrypt(value)  # r^n via the plain path
    assert keypair.decrypt(ciphertext) == plain_keypair.decrypt(ciphertext) == value


def test_crt_randomness_precompute_matches_plain_pow(keypair):
    """The CRT-computed ``r^n mod n^2`` equals the direct exponentiation."""
    crt = keypair._crt_context()
    assert crt is not None
    n, n_sq = keypair.public.n, keypair.public.n_squared
    for _ in range(5):
        r = secrets.randbelow(n - 2) + 1
        assert crt.pow_to_n(r, n, n_sq) == pow(r, n, n_sq)


def test_crt_pool_ciphertexts_decrypt_on_both_paths(keypair, plain_keypair):
    keypair.precompute_randomness(2)
    for value in (17, 123456789):
        ciphertext = keypair.encrypt(value)  # draws a CRT-pooled factor
        assert plain_keypair.decrypt(ciphertext) == value


def test_rejects_out_of_range(keypair):
    with pytest.raises(CryptoError):
        keypair.encrypt(-1)
    with pytest.raises(CryptoError):
        keypair.encrypt(keypair.public.n)
    with pytest.raises(CryptoError):
        keypair.decrypt(keypair.public.n_squared)


def test_key_generation_rejects_tiny_keys():
    with pytest.raises(CryptoError):
        PaillierKeyPair.generate(32)


def test_number_theory_helpers():
    assert is_probable_prime(2) and is_probable_prime(97) and not is_probable_prime(1)
    assert not is_probable_prime(561)  # Carmichael number
    prime = generate_prime(64)
    assert prime.bit_length() == 64 and is_probable_prime(prime)
    assert (modinv(3, 11) * 3) % 11 == 1
    with pytest.raises(CryptoError):
        modinv(6, 9)


@settings(max_examples=20, deadline=None)
@given(a=st.integers(min_value=0, max_value=2**30), b=st.integers(min_value=0, max_value=2**30))
def test_homomorphism_property(keypair, a, b):
    hom = Paillier(keypair.public)
    assert keypair.decrypt(hom.add(keypair.encrypt(a), keypair.encrypt(b))) == a + b

"""Paillier (HOM): round trips, additive homomorphism, randomness pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.numbers import generate_prime, is_probable_prime, modinv
from repro.crypto.paillier import Paillier, PaillierKeyPair
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return PaillierKeyPair.generate(512)


def test_roundtrip(keypair):
    for value in (0, 1, 12345, 2**40):
        assert keypair.decrypt(keypair.encrypt(value)) == value


def test_encryption_is_probabilistic(keypair):
    assert keypair.encrypt(77) != keypair.encrypt(77)


def test_homomorphic_addition(keypair):
    hom = Paillier(keypair.public)
    ciphertext = hom.add(keypair.encrypt(1234), keypair.encrypt(4321))
    assert keypair.decrypt(ciphertext) == 5555


def test_add_plain_constant(keypair):
    hom = Paillier(keypair.public)
    assert keypair.decrypt(hom.add_plain(keypair.encrypt(100), 23)) == 123


def test_sum_aggregate(keypair):
    hom = Paillier(keypair.public)
    values = [3, 14, 159, 2653]
    total = hom.sum([keypair.encrypt(v) for v in values])
    assert keypair.decrypt(total) == sum(values)


def test_sum_of_nothing_is_zero(keypair):
    hom = Paillier(keypair.public)
    assert keypair.decrypt(hom.sum([])) == 0


def test_randomness_pool(keypair):
    keypair.precompute_randomness(3)
    assert keypair.randomness_pool_size >= 3
    before = keypair.randomness_pool_size
    keypair.encrypt(5)
    assert keypair.randomness_pool_size == before - 1


def test_rejects_out_of_range(keypair):
    with pytest.raises(CryptoError):
        keypair.encrypt(-1)
    with pytest.raises(CryptoError):
        keypair.encrypt(keypair.public.n)
    with pytest.raises(CryptoError):
        keypair.decrypt(keypair.public.n_squared)


def test_key_generation_rejects_tiny_keys():
    with pytest.raises(CryptoError):
        PaillierKeyPair.generate(32)


def test_number_theory_helpers():
    assert is_probable_prime(2) and is_probable_prime(97) and not is_probable_prime(1)
    assert not is_probable_prime(561)  # Carmichael number
    prime = generate_prime(64)
    assert prime.bit_length() == 64 and is_probable_prime(prime)
    assert (modinv(3, 11) * 3) % 11 == 1
    with pytest.raises(CryptoError):
        modinv(6, 9)


@settings(max_examples=20, deadline=None)
@given(a=st.integers(min_value=0, max_value=2**30), b=st.integers(min_value=0, max_value=2**30))
def test_homomorphism_property(keypair, a, b):
    hom = Paillier(keypair.public)
    assert keypair.decrypt(hom.add(keypair.encrypt(a), keypair.encrypt(b))) == a + b

"""PRF, key derivation (Equation 1) and the deterministic coin stream."""

import pytest

from repro.crypto import prf
from repro.crypto.keys import KeyManager, MasterKey
from repro.errors import CryptoError


def test_prf_is_deterministic_and_key_dependent():
    assert prf.prf(b"k", b"m") == prf.prf(b"k", b"m")
    assert prf.prf(b"k", b"m") != prf.prf(b"k2", b"m")
    assert prf.prf(b"k", b"m") != prf.prf(b"k", b"m2")


def test_expand_lengths():
    assert len(prf.expand(b"k", b"m", 0)) == 0
    assert len(prf.expand(b"k", b"m", 100)) == 100
    assert prf.expand(b"k", b"m", 100)[:32] == prf.expand(b"k", b"m", 32)


def test_derive_key_distinguishes_label_tuples():
    master = b"master-key"
    # ("ab", "c") and ("a", "bc") must produce different keys (length prefixing).
    assert prf.derive_key(master, "ab", "c") != prf.derive_key(master, "a", "bc")
    assert prf.derive_key(master, "t", "c", "Eq", "DET") != prf.derive_key(
        master, "t", "c", "Eq", "RND"
    )


def test_prf_rejects_empty_key():
    with pytest.raises(CryptoError):
        prf.prf(b"", b"m")


def test_deterministic_stream_reproducible():
    a = prf.DeterministicStream(b"key", b"label")
    b = prf.DeterministicStream(b"key", b"label")
    assert a.read(40) == b.read(40)
    assert a.uniform_int(1000) == b.uniform_int(1000)
    assert a.uniform_float() == b.uniform_float()


def test_deterministic_stream_uniform_int_bounds():
    stream = prf.DeterministicStream(b"key", b"label")
    for upper in (1, 2, 7, 1000, 2**33):
        value = stream.uniform_int(upper)
        assert 0 <= value < upper


def test_master_key_validation_and_derivation():
    with pytest.raises(CryptoError):
        MasterKey(b"short")
    mk = MasterKey.from_passphrase("secret passphrase")
    assert mk == MasterKey.from_passphrase("secret passphrase")
    assert mk != MasterKey.from_passphrase("other passphrase")


def test_key_manager_equation_one():
    manager = KeyManager(MasterKey.from_passphrase("mk"))
    key = manager.key_for("t1", "c1", "Eq", "DET")
    assert key == manager.key_for("t1", "c1", "Eq", "DET")
    assert key != manager.key_for("t1", "c1", "Eq", "RND")
    assert key != manager.key_for("t1", "c2", "Eq", "DET")
    assert key != manager.key_for("t2", "c1", "Eq", "DET")


def test_key_manager_subordinate_differs():
    manager = KeyManager(MasterKey.from_passphrase("mk"))
    sub = manager.subordinate("principal-5")
    assert sub.key_for("t", "c", "Eq", "DET") != manager.key_for("t", "c", "Eq", "DET")

"""Integration tests: whole workloads through the encrypted stack."""

import random

import pytest

from repro.analysis.security import high_classification, min_enc_summary
from repro.core.onion import SecurityLevel
from repro.sql.engine import Database
from repro.workloads.phpbb import PHPBB_SENSITIVE_FIELDS, PhpBBApplication
from repro.workloads.tpcc import QUERY_TYPES, TPCCWorkload


@pytest.fixture(scope="module")
def tpcc_proxy(request):
    paillier = request.getfixturevalue("paillier_keypair")
    from repro.core.proxy import CryptDBProxy

    proxy = CryptDBProxy(paillier=paillier)
    workload = TPCCWorkload(
        warehouses=1, districts_per_warehouse=1, customers_per_district=4,
        items=5, orders_per_district=4,
    )
    workload.load_into(proxy)
    proxy.train(workload.training_queries())
    return proxy, workload


def test_tpcc_encrypted_matches_plain_results(tpcc_proxy):
    proxy, workload = tpcc_proxy
    plain = Database()
    plain_workload = TPCCWorkload(
        warehouses=1, districts_per_warehouse=1, customers_per_district=4,
        items=5, orders_per_district=4,
    )
    plain_workload.load_into(plain)
    # Read-only query types must produce identical results on both stacks.
    rng = random.Random(99)
    for query_type in ("Equality", "Range", "Sum", "Join"):
        query = workload.query(query_type, rng)
        encrypted_result = sorted(map(repr, proxy.execute(query).rows))
        plain_result = sorted(map(repr, plain.execute(query).rows))
        assert encrypted_result == plain_result, query


def test_tpcc_all_query_types_run_encrypted(tpcc_proxy):
    proxy, workload = tpcc_proxy
    rng = random.Random(7)
    for query_type in QUERY_TYPES:
        proxy.execute(workload.query(query_type, rng))
    assert proxy.stats.queries_rewritten > 0


def test_tpcc_steady_state_no_more_adjustments(tpcc_proxy):
    proxy, workload = tpcc_proxy
    before = proxy.rewriter.onion_adjustments
    for query in workload.mixed_queries(15):
        proxy.execute(query)
    assert proxy.rewriter.onion_adjustments == before


def test_tpcc_storage_expansion_is_significant(tpcc_proxy):
    proxy, workload = tpcc_proxy
    plain = Database()
    TPCCWorkload(
        warehouses=1, districts_per_warehouse=1, customers_per_district=4,
        items=5, orders_per_district=4,
    ).load_into(plain)
    expansion = proxy.storage_bytes() / plain.storage_bytes()
    # The paper reports 3.76x for TPC-C (HOM-dominated); we only require the
    # expansion to be clearly super-unity and in a plausible band.
    assert expansion > 1.5


def test_min_enc_summary_structure(tpcc_proxy):
    proxy, _ = tpcc_proxy
    summary = min_enc_summary(proxy)
    assert sum(summary.values()) >= 80  # paper's TPC-C mix has 92 columns
    assert summary["RND"] > 0 and summary["DET"] > 0


def test_phpbb_sensitive_fields_encrypted_and_functional(paillier_keypair):
    from repro.core.proxy import CryptDBProxy

    proxy = CryptDBProxy(paillier=paillier_keypair)
    app = PhpBBApplication(proxy, users=4, forums=2)
    app.create_schema()
    app.load_initial_data(messages=3, posts=3)
    for request_type in ("Login", "R post", "W post", "R msg", "W msg"):
        app.request(request_type)
    sensitive = [
        (table, column)
        for table, columns in PHPBB_SENSITIVE_FIELDS.items()
        for column in columns
    ]
    classification = high_classification(proxy, sensitive)
    # Most notably-sensitive fields stay in the HIGH class (§8.3, Figure 9
    # reports 6/6 for phpBB).
    assert classification["total"] == len(sensitive)
    assert classification["high"] >= classification["total"] - 2
    # Message text is never exposed below SEARCH/RND.
    assert proxy.min_enc("privmsgs", "msgtext") >= SecurityLevel.SEARCH

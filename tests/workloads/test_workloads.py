"""Workload generators: TPC-C, phpBB, the analysed applications and the trace."""

import pytest

from repro.analysis.functional import ColumnClassifier
from repro.sql.engine import Database
from repro.workloads.mit602 import MIT602_QUERIES, MIT602_SCHEMA
from repro.workloads.openemr import OPENEMR_QUERIES, OPENEMR_SCHEMA, OPENEMR_SENSITIVE
from repro.workloads.phpbb import PHPBB_PLAIN_SCHEMA, PhpBBApplication, REQUEST_TYPES
from repro.workloads.phpcalendar import PHPCALENDAR_QUERIES, PHPCALENDAR_SCHEMA
from repro.workloads.tpcc import QUERY_TYPES, TPCCWorkload
from repro.workloads.trace import FIGURE7_PAPER, TRACE_DISTRIBUTION, generate_trace


def test_tpcc_schema_has_paper_column_count():
    workload = TPCCWorkload()
    # The paper reports 92 columns for its TPC-C mix; our schema models the
    # same nine tables with a slightly trimmed column set.
    assert 80 <= workload.column_count() <= 95
    assert len(workload.schema_statements()) == 9


def test_tpcc_loads_and_queries_run_on_plain_database():
    workload = TPCCWorkload(
        warehouses=1, districts_per_warehouse=1, customers_per_district=4,
        items=6, orders_per_district=4,
    )
    db = Database()
    workload.load_into(db)
    assert db.row_counts()["customer"] == 4
    assert db.row_counts()["item"] == 6
    for query_type in QUERY_TYPES:
        db.execute(workload.query(query_type))
    assert len(workload.mixed_queries(20)) == 20
    assert len(workload.training_queries()) == len(QUERY_TYPES)


def test_tpcc_queries_are_deterministic_per_seed():
    a = TPCCWorkload(seed=1).queries_of_type("Equality", 5)
    b = TPCCWorkload(seed=1).queries_of_type("Equality", 5)
    assert a == b


def test_phpbb_application_runs_all_request_types():
    app = PhpBBApplication(Database(), users=5, forums=2)
    app.create_schema()
    app.load_initial_data(messages=4, posts=4)
    for request_type in REQUEST_TYPES:
        queries = app.request(request_type)
        assert queries
    assert len(app.mixed_requests(10)) == 10


def test_phpbb_schema_matches_plain_and_annotated_tables():
    from repro.principals.annotations import parse_annotated_schema
    from repro.workloads.phpbb import PHPBB_ANNOTATED_SCHEMA

    annotated = parse_annotated_schema(PHPBB_ANNOTATED_SCHEMA)
    annotated_tables = {s.split()[2] for s in annotated.create_statements}
    plain_tables = {s.split()[2] for s in PHPBB_PLAIN_SCHEMA}
    assert plain_tables == annotated_tables


@pytest.mark.parametrize(
    "name, schema, queries, max_plaintext",
    [
        ("OpenEMR", OPENEMR_SCHEMA, OPENEMR_QUERIES, 3),
        ("MIT 6.02", MIT602_SCHEMA, MIT602_QUERIES, 0),
        ("PHP-calendar", PHPCALENDAR_SCHEMA, PHPCALENDAR_QUERIES, 3),
    ],
)
def test_application_functional_analysis(name, schema, queries, max_plaintext):
    classifier = ColumnClassifier(name)
    classifier.add_schema(schema)
    classifier.add_queries(queries)
    report = classifier.report()
    row = report.as_row()
    # Most columns stay at RND; a bounded number need plaintext, mirroring Figure 9.
    assert row["RND"] > row["OPE"]
    assert row["needs_plaintext"] <= max_plaintext
    assert report.supported_fraction >= 0.85


def test_openemr_sensitive_columns_exist_in_schema():
    classifier = ColumnClassifier("OpenEMR")
    classifier.add_schema(OPENEMR_SCHEMA)
    all_columns = set()
    for sql in OPENEMR_SCHEMA:
        table = sql.split()[2]
        for (t, c) in []:
            pass
    # Every annotated sensitive column parses out of the schema.
    total = sum(len(cols) for cols in OPENEMR_SENSITIVE.values())
    assert total >= 20


def test_trace_distribution_matches_paper_proportions():
    trace = generate_trace(applications=30, columns_per_application=25, seed=7)
    classifier = ColumnClassifier("sql.mit.edu (synthetic)")
    classifier.add_schema(trace.all_schemas())
    classifier.add_queries(trace.all_queries())
    report = classifier.report()
    counts = report.min_enc_counts()
    considered = report.considered_columns
    # The paper finds 99.5% of columns supportable; the synthetic trace is
    # generated to match, so check a loose band.
    assert report.supported_fraction > 0.97
    # RND-only columns dominate, then DET, then OPE; SEARCH and plaintext are rare.
    assert counts["RND"] > counts["DET"] > counts["OPE"] > counts["SEARCH"]
    rnd_fraction = counts["RND"] / considered
    assert abs(rnd_fraction - TRACE_DISTRIBUTION["RND"]) < 0.12


def test_trace_figure7_scaling():
    trace = generate_trace(applications=10, columns_per_application=20)
    assert trace.used_columns == 200
    ratio = trace.total_columns / trace.used_columns
    paper_ratio = FIGURE7_PAPER["columns_total"] / FIGURE7_PAPER["columns_used"]
    assert abs(ratio - paper_ratio) / paper_ratio < 0.15

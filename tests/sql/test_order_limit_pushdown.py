"""ORDER BY + LIMIT served by streaming an ordered index.

When the sort column carries an ordered index (the shape CryptDB produces:
an OPE-ciphertext column indexed for range scans), the executor must stream
rows in index order and stop after OFFSET + LIMIT matches instead of
materialising and sorting the full match set -- and the streamed results
must be indistinguishable from the full-sort path.
"""

import random

import pytest

from repro.sql.engine import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE scores (id INT, points INT, team VARCHAR(10))")
    rng = random.Random(42)
    for i in range(40):
        database.execute(
            f"INSERT INTO scores (id, points, team) VALUES "
            f"({i}, {rng.randrange(8)}, 'team{i % 3}')"
        )
    database.catalog.table("scores").create_index("points", ordered=True)
    return database


def _general_path_rows(db, sql):
    """Run the same statement with the ordered index temporarily removed."""
    indexes = db.catalog.table("scores").indexes.ordered_indexes
    index = indexes.pop("points")
    try:
        return db.execute(sql).rows
    finally:
        indexes["points"] = index


@pytest.mark.parametrize("sql", [
    "SELECT id, points FROM scores ORDER BY points LIMIT 5",
    "SELECT id, points FROM scores ORDER BY points DESC LIMIT 5",
    "SELECT id, points FROM scores ORDER BY points LIMIT 4 OFFSET 3",
    "SELECT id FROM scores WHERE team = 'team1' ORDER BY points DESC LIMIT 6",
    "SELECT * FROM scores ORDER BY points LIMIT 100",
])
def test_pushdown_matches_full_sort(db, sql):
    before = db.executor.index_order_scans
    fast = db.execute(sql).rows
    assert db.executor.index_order_scans == before + 1, "index path not taken"
    assert fast == _general_path_rows(db, sql)


@pytest.mark.parametrize("sql", [
    "SELECT id FROM scores ORDER BY points",  # no LIMIT: nothing to cut short
    "SELECT id FROM scores ORDER BY team LIMIT 3",  # no ordered index on team
    "SELECT DISTINCT points FROM scores ORDER BY points LIMIT 3",
    "SELECT points, COUNT(*) FROM scores GROUP BY points ORDER BY points LIMIT 3",
    "SELECT MAX(points) FROM scores ORDER BY points LIMIT 1",
    "SELECT id FROM scores ORDER BY points, id LIMIT 3",  # compound sort key
    "SELECT id FROM scores ORDER BY points LIMIT 0",  # nothing to stream
    # The WHERE predicate is narrowable through the ordered index itself,
    # which beats walking the whole index in sort order.
    "SELECT id FROM scores WHERE points > 3 ORDER BY points LIMIT 2",
    "SELECT id FROM scores WHERE points = 5 ORDER BY points LIMIT 2",
])
def test_general_path_kept_when_not_applicable(db, sql):
    before = db.executor.index_order_scans
    rows = db.execute(sql).rows
    assert db.executor.index_order_scans == before
    assert rows == _general_path_rows(db, sql)


def test_null_sort_keys_fall_back_to_full_sort(db):
    # NULLs are absent from the index, and NULLS FIRST/LAST placement only
    # works on the materialising path -- the executor must notice and bail.
    db.execute("INSERT INTO scores (id, team) VALUES (99, 'team0')")
    sql = "SELECT id FROM scores ORDER BY points LIMIT 3"
    before = db.executor.index_order_scans
    rows = db.execute(sql).rows
    assert db.executor.index_order_scans == before
    assert rows[0] == (99,)  # NULL sorts first ascending
    assert rows == _general_path_rows(db, sql)


def test_pushdown_reflects_updates_and_deletes(db):
    db.execute("UPDATE scores SET points = 100 WHERE id = 7")
    db.execute("DELETE FROM scores WHERE id = 11")
    sql = "SELECT id, points FROM scores ORDER BY points DESC LIMIT 3"
    rows = db.execute(sql).rows
    assert rows[0] == (7, 100)
    assert all(row[0] != 11 for row in rows)
    assert rows == _general_path_rows(db, sql)


def test_ties_keep_stable_row_order_both_directions(db):
    asc = db.execute("SELECT id, points FROM scores ORDER BY points LIMIT 40").rows
    desc = db.execute("SELECT id, points FROM scores ORDER BY points DESC LIMIT 40").rows
    assert asc == _general_path_rows(db, "SELECT id, points FROM scores ORDER BY points LIMIT 40")
    assert desc == _general_path_rows(
        db, "SELECT id, points FROM scores ORDER BY points DESC LIMIT 40"
    )

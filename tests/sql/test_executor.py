"""The query executor over the in-memory engine."""

import pytest

from repro.errors import SchemaError, SQLExecutionError
from repro.sql.engine import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(50), dept VARCHAR(20), salary INT)"
    )
    database.execute(
        "INSERT INTO emp (id, name, dept, salary) VALUES "
        "(1, 'Alice', 'sales', 70000), (2, 'Bob', 'sales', 50000), "
        "(3, 'Carol', 'eng', 90000), (4, 'Dan', 'eng', 65000), (5, 'Eve', 'hr', NULL)"
    )
    database.execute("CREATE TABLE dept (dname VARCHAR(20), head VARCHAR(40))")
    database.execute("INSERT INTO dept (dname, head) VALUES ('sales', 'Zoe'), ('eng', 'Yan')")
    return database


def test_select_projection_and_star(db):
    assert db.execute("SELECT name FROM emp WHERE id = 3").rows == [("Carol",)]
    star = db.execute("SELECT * FROM emp WHERE id = 1")
    assert star.columns == ["id", "name", "dept", "salary"]
    assert star.rows == [(1, "Alice", "sales", 70000)]


def test_where_and_or_not(db):
    result = db.execute(
        "SELECT id FROM emp WHERE dept = 'sales' OR (dept = 'eng' AND salary > 80000) ORDER BY id"
    )
    assert result.rows == [(1,), (2,), (3,)]
    result = db.execute("SELECT id FROM emp WHERE NOT dept = 'sales' ORDER BY id")
    assert result.rows == [(3,), (4,), (5,)]


def test_null_handling_in_where(db):
    assert db.execute("SELECT id FROM emp WHERE salary > 0").rows == [(1,), (2,), (3,), (4,)]
    assert db.execute("SELECT id FROM emp WHERE salary IS NULL").rows == [(5,)]


def test_order_by_limit_offset(db):
    result = db.execute("SELECT name FROM emp ORDER BY salary DESC LIMIT 2")
    assert result.rows == [("Carol",), ("Alice",)]
    result = db.execute("SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1")
    assert result.rows == [("Alice",), ("Dan",)]
    # NULL sorts first ascending.
    result = db.execute("SELECT id FROM emp ORDER BY salary LIMIT 1")
    assert result.rows == [(5,)]


def test_order_by_column_not_in_projection(db):
    result = db.execute("SELECT name FROM emp WHERE dept = 'eng' ORDER BY salary DESC")
    assert result.rows == [("Carol",), ("Dan",)]


def test_group_by_aggregates_and_having(db):
    result = db.execute(
        "SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary), AVG(salary) "
        "FROM emp GROUP BY dept ORDER BY dept"
    )
    as_dict = {row[0]: row[1:] for row in result.rows}
    assert as_dict["sales"] == (2, 120000, 50000, 70000, 60000.0)
    assert as_dict["eng"] == (2, 155000, 65000, 90000, 77500.0)
    assert as_dict["hr"] == (1, None, None, None, None)
    having = db.execute(
        "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept"
    )
    assert having.rows == [("eng",), ("sales",)]


def test_count_distinct_and_global_aggregate(db):
    assert db.execute("SELECT COUNT(DISTINCT dept) FROM emp").scalar() == 3
    assert db.execute("SELECT COUNT(salary) FROM emp").scalar() == 4
    assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 5
    assert db.execute("SELECT SUM(salary) FROM emp WHERE dept = 'hr'").scalar() is None


def test_joins(db):
    inner = db.execute(
        "SELECT e.name, d.head FROM emp e JOIN dept d ON e.dept = d.dname "
        "WHERE e.salary > 65000 ORDER BY e.name"
    )
    assert inner.rows == [("Alice", "Zoe"), ("Carol", "Yan")]
    left = db.execute(
        "SELECT e.name, d.head FROM emp e LEFT JOIN dept d ON e.dept = d.dname "
        "WHERE e.id = 5"
    )
    assert left.rows == [("Eve", None)]
    implicit = db.execute(
        "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname AND d.head = 'Yan' ORDER BY e.name"
    )
    assert implicit.rows == [("Carol",), ("Dan",)]


def test_join_with_residual_and_same_side_equality(db):
    # The cross-table equality hash-joins; the extra conjuncts apply as a
    # residual filter on each matched pair.
    result = db.execute(
        "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dname AND e.salary > 60000 "
        "ORDER BY e.name"
    )
    assert result.rows == [("Alice",), ("Carol",), ("Dan",)]
    # A same-side equality conjunct (e.name = e.name) is shaped like a join
    # key but cannot key a hash join; the cross-table conjunct after it must
    # still be used (not a silent fall-through to an empty result).
    result = db.execute(
        "SELECT e.name FROM emp e JOIN dept d ON e.name = e.name AND e.dept = d.dname "
        "WHERE d.head = 'Yan' ORDER BY e.name"
    )
    assert result.rows == [("Carol",), ("Dan",)]
    # LEFT join with a residual: unmatched-after-residual rows null-extend.
    left = db.execute(
        "SELECT e.name, d.head FROM emp e LEFT JOIN dept d "
        "ON e.dept = d.dname AND e.salary > 60000 ORDER BY e.name"
    )
    assert left.rows == [
        ("Alice", "Zoe"), ("Bob", None), ("Carol", "Yan"), ("Dan", "Yan"), ("Eve", None),
    ]


def test_join_on_function_of_column(db):
    # Hash-joinable key expressions include single-column function calls
    # (the shape the CryptDB rewriter emits for DET-JOIN equality).
    result = db.execute(
        "SELECT e.name FROM emp e JOIN dept d ON UPPER(e.dept) = UPPER(d.dname) "
        "WHERE d.head = 'Zoe' ORDER BY e.name"
    )
    assert result.rows == [("Alice",), ("Bob",)]


def test_distinct(db):
    assert db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept").rows == [
        ("eng",), ("hr",), ("sales",)
    ]


def test_insert_update_delete_rowcounts(db):
    assert db.execute("INSERT INTO emp (id, name, dept, salary) VALUES (6, 'Fay', 'hr', 30000)").rowcount == 1
    assert db.execute("UPDATE emp SET salary = salary + 1000 WHERE dept = 'hr' AND salary IS NOT NULL").rowcount == 1
    assert db.execute("SELECT salary FROM emp WHERE id = 6").scalar() == 31000
    assert db.execute("DELETE FROM emp WHERE dept = 'hr'").rowcount == 2
    assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 4


def test_update_expression_uses_row_context(db):
    db.execute("UPDATE emp SET salary = salary * 2 WHERE id = 2")
    assert db.execute("SELECT salary FROM emp WHERE id = 2").scalar() == 100000


def test_transactions_rollback_and_commit(db):
    db.execute("BEGIN")
    db.execute("DELETE FROM emp WHERE dept = 'eng'")
    db.execute("UPDATE emp SET salary = 1 WHERE id = 1")
    db.execute("INSERT INTO emp (id, name, dept, salary) VALUES (9, 'Zed', 'ops', 10)")
    db.execute("ROLLBACK")
    assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 5
    assert db.execute("SELECT salary FROM emp WHERE id = 1").scalar() == 70000
    db.execute("BEGIN")
    db.execute("DELETE FROM emp WHERE id = 1")
    db.execute("COMMIT")
    assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 4


def test_indexes_used_for_lookups(db):
    db.execute("CREATE INDEX idx_dept ON emp (dept)")
    result = db.execute("SELECT id FROM emp WHERE dept = 'eng' ORDER BY id")
    assert result.rows == [(3,), (4,)]
    table = db.table("emp")
    assert "dept" in table.indexes.columns()


def test_udf_registration(db):
    db.register_scalar_udf("TWICE", lambda v: None if v is None else v * 2)
    assert db.execute("SELECT TWICE(salary) FROM emp WHERE id = 1").scalar() == 140000
    db.register_aggregate_udf("PRODUCT", lambda: 1, lambda s, v: s * v, lambda s: s)
    assert db.execute("SELECT PRODUCT(id) FROM emp WHERE id IN (1, 2, 3)").scalar() == 6


def test_errors(db):
    with pytest.raises(SchemaError):
        db.execute("SELECT * FROM missing_table")
    with pytest.raises(SQLExecutionError):
        db.execute("SELECT missing_column FROM emp")
    with pytest.raises(SQLExecutionError):
        db.execute("INSERT INTO emp (id, name) VALUES (1)")
    with pytest.raises(SchemaError):
        db.execute("CREATE TABLE emp (id INT)")


def test_create_drop_table(db):
    db.execute("CREATE TABLE tmp (x INT)")
    db.execute("CREATE TABLE IF NOT EXISTS tmp (x INT)")
    db.execute("DROP TABLE tmp")
    db.execute("DROP TABLE IF EXISTS tmp")
    with pytest.raises(SchemaError):
        db.execute("DROP TABLE tmp")


def test_select_without_from(db):
    assert db.execute("SELECT 1 + 1").scalar() == 2


def test_execute_script(db):
    results = db.execute_script(
        "INSERT INTO dept (dname, head) VALUES ('hr', 'Hal'); SELECT COUNT(*) FROM dept;"
    )
    assert results[-1].scalar() == 3


def test_storage_accounting(db):
    assert db.storage_bytes() > 0
    assert db.row_counts()["emp"] == 5

"""Regression tests: secondary indexes stay consistent under mutation.

The executor narrows scans through ``HashIndex``/``OrderedIndex`` whenever a
predicate allows it, so a stale index silently drops (or resurrects) rows.
These tests mutate tables through UPDATE/DELETE/ROLLBACK and assert both the
index structures themselves and the equivalence of index-narrowed scans with
full scans.
"""

import pytest

from repro.sql.engine import Database
from repro.sql.indexes import HashIndex, OrderedIndex


# ---------------------------------------------------------------------------
# Index structures in isolation
# ---------------------------------------------------------------------------
def test_ordered_index_remove_with_duplicate_keys():
    index = OrderedIndex("c")
    index.insert(5, 1)
    index.insert(5, 2)
    index.insert(5, 3)
    index.insert(7, 4)
    index.remove(5, 2)
    assert index.lookup(5) == {1, 3}
    assert index.range(5, 7) == {1, 3, 4}
    assert len(index) == 3
    # Removing a (value, row) pair that is not present is a no-op.
    index.remove(5, 99)
    index.remove(6, 1)
    assert index.lookup(5) == {1, 3}


def test_hash_index_remove_with_duplicate_keys():
    index = HashIndex("c")
    index.insert("x", 1)
    index.insert("x", 2)
    index.remove("x", 1)
    assert index.lookup("x") == {2}
    index.remove("x", 2)
    assert index.lookup("x") == set()
    assert len(index) == 0


def test_indexes_ignore_nulls():
    ordered = OrderedIndex("c")
    hashed = HashIndex("c")
    ordered.insert(None, 1)
    hashed.insert(None, 1)
    assert len(ordered) == 0 and len(hashed) == 0
    ordered.remove(None, 1)
    hashed.remove(None, 1)
    assert ordered.lookup(None) == set() and hashed.lookup(None) == set()


# ---------------------------------------------------------------------------
# Index maintenance through the engine
# ---------------------------------------------------------------------------
@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (id int, grp int, score int)")
    table = database.table("t")
    table.create_index("grp")                 # hash
    table.create_index("score", ordered=True)  # ordered
    for i in range(1, 11):
        database.execute(
            f"INSERT INTO t (id, grp, score) VALUES ({i}, {i % 3}, {i * 10})"
        )
    return database


def _assert_index_consistent(database):
    """Every index entry matches the heap, and vice versa."""
    table = database.table("t")
    rows = dict(table.scan())
    for column, index in {
        **table.indexes.hash_indexes,
        **table.indexes.ordered_indexes,
    }.items():
        indexed_pairs = set()
        for row_id, row in rows.items():
            value = row.get(column)
            if value is None:
                continue
            assert row_id in index.lookup(value), (
                f"row {row_id} missing from {column} index for value {value!r}"
            )
            indexed_pairs.add((value, row_id))
        assert len(index) == len(indexed_pairs), (
            f"{column} index holds stale entries"
        )


def _indexed_equals_full_scan(database):
    """Index-narrowed queries return the same rows as predicate-only scans."""
    unindexed = Database()
    unindexed.execute("CREATE TABLE t (id int, grp int, score int)")
    for _, row in database.table("t").scan():
        unindexed.insert_row("t", dict(row))
    queries = [
        "SELECT id FROM t WHERE grp = 1 ORDER BY id",
        "SELECT id FROM t WHERE score >= 40 ORDER BY id",
        "SELECT id FROM t WHERE score BETWEEN 20 AND 70 ORDER BY id",
        "SELECT id FROM t WHERE score < 35 AND grp = 2 ORDER BY id",
    ]
    for query in queries:
        assert database.execute(query).rows == unindexed.execute(query).rows, query


def test_update_moves_index_entries(db):
    db.execute("UPDATE t SET score = 15 WHERE id = 8")
    db.execute("UPDATE t SET grp = 9 WHERE grp = 0")
    _assert_index_consistent(db)
    _indexed_equals_full_scan(db)
    assert db.execute("SELECT id FROM t WHERE score = 15").rows == [(8,)]
    assert db.execute("SELECT id FROM t WHERE score = 80").rows == []
    assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 9").scalar() == 3


def test_delete_removes_index_entries(db):
    db.execute("DELETE FROM t WHERE grp = 1")
    _assert_index_consistent(db)
    _indexed_equals_full_scan(db)
    assert db.execute("SELECT id FROM t WHERE grp = 1").rows == []
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 6


def test_rollback_restores_index_entries(db):
    before = sorted(db.execute("SELECT id, grp, score FROM t").rows)
    db.execute("BEGIN")
    db.execute("INSERT INTO t (id, grp, score) VALUES (99, 7, 990)")
    db.execute("UPDATE t SET score = score + 1000 WHERE grp = 2")
    db.execute("DELETE FROM t WHERE id <= 3")
    _assert_index_consistent(db)
    db.execute("ROLLBACK")
    _assert_index_consistent(db)
    _indexed_equals_full_scan(db)
    assert sorted(db.execute("SELECT id, grp, score FROM t").rows) == before
    # The rolled-back insert must not be reachable through any index.
    assert db.execute("SELECT id FROM t WHERE grp = 7").rows == []
    assert db.execute("SELECT id FROM t WHERE score > 900").rows == []
    # And the rolled-back update/delete must be reachable again.
    assert db.execute("SELECT id FROM t WHERE score = 20").rows == [(2,)]


def test_commit_keeps_index_entries(db):
    db.execute("BEGIN")
    db.execute("UPDATE t SET score = 12345 WHERE id = 1")
    db.execute("COMMIT")
    _assert_index_consistent(db)
    assert db.execute("SELECT id FROM t WHERE score = 12345").rows == [(1,)]

"""Expression evaluation: SQL three-valued logic, LIKE, coercions."""

import pytest

from repro.errors import SQLExecutionError
from repro.sql.expressions import RowContext, evaluate, is_truthy, like_to_regex
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse_expression

FUNCS = FunctionRegistry()


def _eval(text, row=None):
    context = RowContext({(None, k): v for k, v in (row or {}).items()})
    return evaluate(parse_expression(text), context, FUNCS)


def test_arithmetic_and_comparison():
    assert _eval("1 + 2 * 3") == 7
    assert _eval("(1 + 2) * 3") == 9
    assert _eval("10 / 4") == 2.5
    assert _eval("10 % 3") == 1
    assert _eval("2 < 3") is True
    assert _eval("2 >= 3") is False


def test_null_propagation():
    assert _eval("a + 1", {"a": None}) is None
    assert _eval("a = 1", {"a": None}) is None
    assert _eval("a IS NULL", {"a": None}) is True
    assert _eval("a IS NOT NULL", {"a": None}) is False


def test_kleene_logic():
    assert _eval("a = 1 AND 1 = 1", {"a": None}) is None
    assert _eval("a = 1 AND 1 = 2", {"a": None}) is False
    assert _eval("a = 1 OR 1 = 1", {"a": None}) is True
    assert _eval("a = 1 OR 1 = 2", {"a": None}) is None
    assert _eval("NOT (a = 1)", {"a": None}) is None


def test_in_and_between_with_nulls():
    assert _eval("a IN (1, 2)", {"a": 2}) is True
    assert _eval("a IN (1, 2)", {"a": 3}) is False
    assert _eval("a IN (1, NULL)", {"a": 3}) is None
    assert _eval("a NOT IN (1, 2)", {"a": 3}) is True
    assert _eval("a BETWEEN 1 AND 5", {"a": 3}) is True
    assert _eval("a NOT BETWEEN 1 AND 5", {"a": 9}) is True


def test_like_patterns():
    assert _eval("name LIKE 'al%'", {"name": "alice"}) is True
    assert _eval("name LIKE '%ic%'", {"name": "alice"}) is True
    assert _eval("name LIKE 'a_ice'", {"name": "alice"}) is True
    assert _eval("name LIKE 'bob'", {"name": "alice"}) is False
    assert like_to_regex("%.txt").match("file.txt")


def test_string_number_coercion():
    assert _eval("a = '5'", {"a": 5}) is True
    assert _eval("a < '10'", {"a": 5}) is True


def test_functions_and_unknown_function():
    assert _eval("UPPER(name)", {"name": "bob"}) == "BOB"
    assert _eval("LENGTH(name)", {"name": "bob"}) == 3
    assert _eval("COALESCE(a, 7)", {"a": None}) == 7
    with pytest.raises(SQLExecutionError):
        _eval("NO_SUCH_FUNCTION(1)")


def test_unknown_and_ambiguous_columns():
    with pytest.raises(SQLExecutionError):
        _eval("missing_column = 1", {"a": 1})
    context = RowContext({("t1", "x"): 1, ("t2", "x"): 2})
    with pytest.raises(SQLExecutionError):
        evaluate(parse_expression("x = 1"), context, FUNCS)
    assert evaluate(parse_expression("t1.x = 1"), context, FUNCS) is True


def test_is_truthy():
    assert is_truthy(True) and is_truthy(1) and is_truthy("x")
    assert not is_truthy(None) and not is_truthy(0) and not is_truthy(False)


def test_aggregate_outside_group_context_rejected():
    with pytest.raises(SQLExecutionError):
        _eval("SUM(a)", {"a": 3})


def test_division_by_zero_yields_null():
    assert _eval("1 / 0") is None
    assert _eval("1 % 0") is None

"""SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_expression, parse_sql


def test_tokenize_basic_select():
    tokens = tokenize("SELECT a, b FROM t WHERE a = 'x''y' AND b >= 10.5")
    kinds = [t.type for t in tokens]
    assert kinds[0] is TokenType.KEYWORD
    values = [t.value for t in tokens if t.type is TokenType.STRING]
    assert values == ["x'y"]
    numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
    assert numbers == [10.5]


def test_tokenize_blob_and_comments():
    tokens = tokenize("SELECT X'0a0b' -- trailing comment\n, c")
    blobs = [t.value for t in tokens if t.type is TokenType.BLOB]
    assert blobs == [b"\x0a\x0b"]


def test_tokenize_errors():
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT 'unterminated")
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT #")


def test_parse_select_full_clause_set():
    statement = parse_sql(
        "SELECT DISTINCT a, COUNT(*) AS n FROM t1 JOIN t2 ON t1.x = t2.y "
        "WHERE a > 5 AND b IN (1, 2, 3) GROUP BY a HAVING COUNT(*) > 1 "
        "ORDER BY a DESC LIMIT 10 OFFSET 2"
    )
    assert isinstance(statement, ast.Select)
    assert statement.distinct
    assert statement.limit == 10 and statement.offset == 2
    assert isinstance(statement.from_clause, ast.Join)
    assert len(statement.group_by) == 1
    assert not statement.order_by[0].ascending


def test_parse_mysql_limit_offset_form():
    statement = parse_sql("SELECT a FROM t LIMIT 5, 10")
    assert statement.offset == 5 and statement.limit == 10


def test_parse_insert_multi_row():
    statement = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert isinstance(statement, ast.Insert)
    assert statement.columns == ["a", "b"]
    assert len(statement.rows) == 2


def test_parse_update_delete():
    update = parse_sql("UPDATE t SET a = a + 1, b = 'z' WHERE id = 7")
    assert isinstance(update, ast.Update)
    assert len(update.assignments) == 2
    delete = parse_sql("DELETE FROM t WHERE id BETWEEN 1 AND 5")
    assert isinstance(delete, ast.Delete)
    assert isinstance(delete.where, ast.Between)


def test_parse_create_table_and_index():
    create = parse_sql(
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(100) NOT NULL, price DECIMAL(10,2))"
    )
    assert isinstance(create, ast.CreateTable)
    assert create.columns[0].primary_key
    assert not create.columns[1].nullable
    index = parse_sql("CREATE UNIQUE INDEX idx ON t (name)")
    assert isinstance(index, ast.CreateIndex) and index.unique


def test_parse_transactions():
    assert isinstance(parse_sql("BEGIN"), ast.Begin)
    assert isinstance(parse_sql("START TRANSACTION"), ast.Begin)
    assert isinstance(parse_sql("COMMIT"), ast.Commit)
    assert isinstance(parse_sql("ROLLBACK"), ast.Rollback)


def test_parse_errors():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT FROM")
    with pytest.raises(SQLSyntaxError):
        parse_sql("EXPLAIN SELECT 1")
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT 1 extra tokens here ,,")


def test_expression_precedence():
    expr = parse_expression("a + b * 2 > 5 AND NOT c = 1 OR d < 3")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
    left = expr.left
    assert isinstance(left, ast.BinaryOp) and left.op == "AND"


def test_to_sql_roundtrip():
    original = (
        "SELECT a, SUM(b) FROM t WHERE (a = 'x') AND (b BETWEEN 1 AND 9) "
        "GROUP BY a ORDER BY a ASC LIMIT 3"
    )
    statement = parse_sql(original)
    reparsed = parse_sql(statement.to_sql())
    assert reparsed.to_sql() == statement.to_sql()


def test_like_and_null_predicates():
    statement = parse_sql("SELECT a FROM t WHERE a LIKE '%word%' AND b IS NOT NULL")
    like = statement.where.left
    assert isinstance(like, ast.Like)
    isnull = statement.where.right
    assert isinstance(isnull, ast.IsNull) and isnull.negated


def test_negative_literals_folded():
    statement = parse_sql("SELECT -5 FROM t WHERE a = -3")
    assert statement.items[0].expr.value == -5
    assert statement.where.right.value == -3

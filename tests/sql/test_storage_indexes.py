"""Storage layer: tables, secondary indexes, transactions at the API level."""

import pytest

from repro.errors import SchemaError, SQLExecutionError
from repro.sql.indexes import HashIndex, OrderedIndex
from repro.sql.storage import Catalog, Table
from repro.sql.types import INT, VARCHAR, ColumnDef


def _table() -> Table:
    return Table("t", [ColumnDef("id", INT(), primary_key=True), ColumnDef("name", VARCHAR(20))])


def test_insert_get_update_delete():
    table = _table()
    row_id = table.insert({"id": 1, "name": "a"})
    assert table.get(row_id)["name"] == "a"
    previous = table.update(row_id, {"name": "b"})
    assert previous["name"] == "a"
    assert table.get(row_id)["name"] == "b"
    removed = table.delete(row_id)
    assert removed["name"] == "b"
    with pytest.raises(SQLExecutionError):
        table.get(row_id)


def test_restore_after_delete_preserves_row_id():
    table = _table()
    row_id = table.insert({"id": 1, "name": "a"})
    row = table.delete(row_id)
    table.restore(row_id, row)
    assert table.get(row_id)["id"] == 1
    with pytest.raises(SQLExecutionError):
        table.restore(row_id, row)


def test_duplicate_and_unknown_columns_rejected():
    with pytest.raises(SchemaError):
        Table("bad", [ColumnDef("x", INT()), ColumnDef("x", INT())])
    table = _table()
    with pytest.raises(SQLExecutionError):
        table.insert({"id": 1, "nope": 2})


def test_primary_key_indexed_by_default():
    table = _table()
    table.insert({"id": 5, "name": "x"})
    assert table.indexes.equality_lookup("id", 5)


def test_hash_index_add_remove():
    index = HashIndex("c")
    index.insert("v", 1)
    index.insert("v", 2)
    index.insert(None, 3)
    assert index.lookup("v") == {1, 2}
    assert index.lookup(None) == set()
    index.remove("v", 1)
    assert index.lookup("v") == {2}
    assert len(index) == 1


def test_ordered_index_range_queries():
    index = OrderedIndex("c")
    for value, row_id in [(5, 1), (10, 2), (15, 3), (20, 4)]:
        index.insert(value, row_id)
    assert index.range(low=10, high=15) == {2, 3}
    assert index.range(low=10, high=15, include_low=False) == {3}
    assert index.range(high=10) == {1, 2}
    assert index.range(low=16) == {4}
    assert index.lookup(15) == {3}
    index.remove(15, 3)
    assert index.lookup(15) == set()


def test_create_index_populates_existing_rows():
    table = _table()
    for i in range(10):
        table.insert({"id": i, "name": f"n{i % 3}"})
    table.create_index("name")
    assert len(table.indexes.equality_lookup("name", "n0")) == 4
    table.create_index("id", ordered=True)
    assert len(table.indexes.range_lookup("id", 2, 5, True, True)) == 4


def test_add_column_backfills_default():
    table = _table()
    table.insert({"id": 1, "name": "a"})
    table.add_column(ColumnDef("extra", INT()), default=7)
    assert table.get(1)["extra"] == 7
    with pytest.raises(SchemaError):
        table.add_column(ColumnDef("extra", INT()))


def test_catalog():
    catalog = Catalog()
    catalog.create_table("a", [ColumnDef("x", INT())])
    assert catalog.has_table("a")
    catalog.create_table("a", [ColumnDef("x", INT())], if_not_exists=True)
    with pytest.raises(SchemaError):
        catalog.create_table("a", [ColumnDef("x", INT())])
    assert catalog.table_names() == ["a"]
    catalog.drop_table("a")
    with pytest.raises(SchemaError):
        catalog.table("a")

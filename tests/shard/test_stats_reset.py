"""Satellite regression: stats.reset() must zero remote/shard counters
end-to-end -- client reconnect/retry counters, the per-shard scatter/merge
counters, and the server-side counters all reset through the STATS wire
frame the same way the proxy's own counters always have."""

from __future__ import annotations

from repro.crypto.keys import MasterKey
from repro.server.loopback import connect_loopback
from repro.shard import ShardedBackend


def test_local_proxy_reset_cascades_into_shard_counters(make_proxy):
    backend = ShardedBackend(shards=3)
    proxy = make_proxy(db=backend)
    proxy.create_table("CREATE TABLE t (id INTEGER, v INTEGER)")
    proxy.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)")
    proxy.execute("SELECT SUM(v) FROM t")
    assert proxy.stats.shard is backend
    assert backend.counters["routed_inserts"] >= 1
    assert backend.counters["scatter_selects"] >= 1
    before = proxy.stats.shard_stats()
    assert before["scatter_selects"] >= 1
    proxy.stats.reset()
    after = proxy.stats.shard_stats()
    assert after["scatter_selects"] == 0
    assert after["routed_inserts"] == 0
    # Reset clears counters, never data.
    assert sum(after["rows_per_shard"]) == 3
    assert proxy.execute("SELECT COUNT(*) FROM t").rows == [(3,)]


def test_stats_reset_round_trips_the_wire(paillier_keypair):
    conn = connect_loopback(
        backend=ShardedBackend(shards=2),
        master_key=MasterKey.from_passphrase("stats-reset-test"),
        paillier=paillier_keypair,
        hom_precompute=4,
    )
    try:
        client = conn.proxy
        cur = conn.cursor()
        conn.loopback_server.server.proxy.create_table(
            "CREATE TABLE t (id INTEGER, v INTEGER)"
        )
        cur.execute("INSERT INTO t (id, v) VALUES (1, 5), (2, 6)")
        cur.execute("SELECT SUM(v) FROM t")

        # Simulate observed wire trouble so the client-side counters are
        # nonzero -- the regression was exactly these surviving a reset.
        client.reconnects = 3
        client.retries = 2

        before = client.server_stats()
        assert before["proxy"]["queries_processed"] >= 2
        assert "shard" in before, "STATS frame must carry the shard block"
        assert before["shard"]["shards"] == 2
        assert before["shard"]["routed_inserts"] >= 1

        snapshot = client.server_stats(reset=True)
        # The resetting call itself still reports the closing epoch...
        assert snapshot["proxy"]["queries_processed"] >= 2
        assert snapshot["shard"]["routed_inserts"] >= 1

        # ...and everything afterwards starts from zero, on both ends.
        assert client.reconnects == 0
        assert client.retries == 0
        after = client.server_stats()
        assert after["proxy"]["queries_processed"] == 0
        assert after["shard"]["routed_inserts"] == 0
        assert after["shard"]["scatter_selects"] == 0
        assert all(v == 0 for v in after["server"].values())

        # Data is untouched: only counters reset.
        cur.execute("SELECT COUNT(*) FROM t")
        assert cur.fetchall() == [(2,)]
    finally:
        conn.close()


def test_plain_stats_call_does_not_reset(paillier_keypair):
    conn = connect_loopback(
        backend=ShardedBackend(shards=2),
        master_key=MasterKey.from_passphrase("stats-noreset-test"),
        paillier=paillier_keypair,
        hom_precompute=4,
    )
    try:
        client = conn.proxy
        conn.loopback_server.server.proxy.create_table("CREATE TABLE t (id INTEGER)")
        cur = conn.cursor()
        cur.execute("INSERT INTO t (id) VALUES (1)")
        client.reconnects = 1
        first = client.server_stats()
        second = client.server_stats()
        assert second["proxy"]["queries_processed"] >= first["proxy"]["queries_processed"]
        assert client.reconnects == 1  # untouched without reset=True
    finally:
        conn.close()

"""ShardedBackend unit tests: routing, scatter, broadcast, faults, stats."""

from __future__ import annotations

import pytest

from repro import faults
from repro.api.backends import create_backend
from repro.shard import ShardedBackend
from repro.shard.router import ShardRouter


def _mk(shards=3, **kwargs) -> ShardedBackend:
    backend = ShardedBackend(shards=shards, **kwargs)
    backend.execute("CREATE TABLE t (id INTEGER, grp TEXT, v INTEGER)")
    backend.declare_routing("t", "id")
    return backend


def _fill(backend, count=30):
    rows = ", ".join(f"({i}, 'g{i % 3}', {i * 10})" for i in range(count))
    backend.execute(f"INSERT INTO t (id, grp, v) VALUES {rows}")


def test_create_backend_name():
    backend = create_backend("sharded", shards=4)
    assert backend.is_sharded and backend.shard_count == 4


def test_ddl_broadcasts_to_every_shard():
    backend = _mk()
    for shard in backend.backends:
        assert shard.has_table("t")


def test_inserts_route_rows_by_declared_key():
    backend = _mk()
    _fill(backend)
    router = ShardRouter(3)
    per_shard = [shard.row_counts().get("t", 0) for shard in backend.backends]
    assert sum(per_shard) == 30
    expected = [0, 0, 0]
    for i in range(30):
        expected[router.route(i)] += 1
    assert per_shard == expected
    # More than one shard actually holds data.
    assert sum(1 for c in per_shard if c) > 1


def test_undeclared_table_pins_to_shard_zero():
    backend = ShardedBackend(shards=3)
    backend.execute("CREATE TABLE u (id INTEGER)")
    backend.execute("INSERT INTO u (id) VALUES (1), (2), (3)")
    assert backend.backends[0].row_counts().get("u") == 3
    assert not backend.backends[1].row_counts().get("u")


def test_scatter_select_merges_ordered_rows():
    backend = _mk()
    _fill(backend)
    result = backend.execute("SELECT id, v FROM t ORDER BY id DESC")
    assert [row[0] for row in result.rows] == list(range(29, -1, -1))
    assert backend.counters["scatter_selects"] >= 1
    assert backend.counters["broadcast_selects"] == 0


def test_limit_offset_applied_after_merge():
    """Satellite regression: rows inside the window live on several shards."""
    backend = _mk()
    _fill(backend)
    result = backend.execute("SELECT id FROM t ORDER BY id ASC LIMIT 4 OFFSET 5")
    assert [row[0] for row in result.rows] == [5, 6, 7, 8]


def test_update_delete_broadcast_and_sum_rowcounts():
    backend = _mk()
    _fill(backend)
    updated = backend.execute("UPDATE t SET v = 0 WHERE grp = 'g1'").rowcount
    assert updated == 10
    deleted = backend.execute("DELETE FROM t WHERE grp = 'g2'").rowcount
    assert deleted == 10
    assert backend.execute("SELECT COUNT(*) FROM t").rows == [(20,)]


def test_aggregates_recombine_across_shards():
    backend = _mk()
    _fill(backend)
    assert backend.execute("SELECT SUM(v), COUNT(*), MIN(v), MAX(v) FROM t").rows == [
        (sum(i * 10 for i in range(30)), 30, 0, 290)
    ]
    grouped = backend.execute("SELECT grp, COUNT(*) FROM t GROUP BY grp")
    assert sorted(grouped.rows) == [("g0", 10), ("g1", 10), ("g2", 10)]
    assert backend.counters["aggregate_merges"] >= 2


def test_join_falls_back_to_broadcast():
    backend = _mk()
    _fill(backend, count=6)
    backend.execute("CREATE TABLE names (id INTEGER, label TEXT)")
    backend.declare_routing("names", "id")
    backend.execute("INSERT INTO names (id, label) VALUES (0, 'zero'), (2, 'two')")
    result = backend.execute(
        "SELECT t.id, names.label FROM t JOIN names ON t.id = names.id "
        "ORDER BY t.id ASC"
    )
    assert result.rows == [(0, "zero"), (2, "two")]
    assert backend.counters["broadcast_selects"] >= 1


def test_left_join_null_extends_when_right_side_is_remote():
    """Satellite regression: a LEFT JOIN whose right-side rows all live on a
    *different* shard than the probing left rows must still null-extend from
    the schema template.  Before the recorded-DDL replay, the scratch engine
    had no ``names`` table for left rows whose shard held zero right rows,
    so the merge path lost the NULL extension that sql/executor provides."""
    backend = ShardedBackend(shards=2)
    backend.execute("CREATE TABLE t (id INTEGER, grp TEXT, v INTEGER)")
    backend.execute("CREATE TABLE names (id INTEGER, label TEXT)")
    backend.declare_routing("t", "id")
    backend.declare_routing("names", "id")
    router = ShardRouter(2)
    left_ids = [i for i in range(40) if router.route(i) == 0][:3]
    right_ids = [i for i in range(40) if router.route(i) == 1][:2]
    backend.execute(
        "INSERT INTO t (id, grp, v) VALUES "
        + ", ".join(f"({i}, 'g', 1)" for i in left_ids)
    )
    backend.execute(
        "INSERT INTO names (id, label) VALUES "
        + ", ".join(f"({i}, 'n{i}')" for i in right_ids)
    )
    # Every t row is on shard 0; every names row on shard 1.
    assert backend.backends[0].row_counts().get("names", 0) == 0
    assert backend.backends[1].row_counts().get("t", 0) == 0
    result = backend.execute(
        "SELECT t.id, names.label FROM t LEFT JOIN names ON t.id = names.id "
        "ORDER BY t.id ASC"
    )
    # No matches -- every left row must survive with a NULL label, exactly
    # like a single backend holding both tables.
    assert result.rows == [(i, None) for i in left_ids]


def test_left_join_against_entirely_empty_right_table():
    backend = ShardedBackend(shards=2)
    backend.execute("CREATE TABLE l (id INTEGER)")
    backend.execute("CREATE TABLE r (id INTEGER, w INTEGER)")
    backend.declare_routing("l", "id")
    backend.execute("INSERT INTO l (id) VALUES (1), (2)")
    result = backend.execute(
        "SELECT l.id, r.w FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id ASC"
    )
    assert result.rows == [(1, None), (2, None)]


def test_scatter_fault_degrades_to_serial():
    backend = _mk()
    _fill(backend)
    plan = faults.FaultPlan(
        7, [faults.FaultRule("pool.scatter", probability=1.0, max_fires=2)]
    )
    with faults.armed(plan):
        result = backend.execute("SELECT id FROM t ORDER BY id ASC")
    assert [row[0] for row in result.rows] == list(range(30))
    assert backend.counters["scatter_fallbacks"] == 1


def test_transactions_broadcast_and_rollback():
    backend = _mk()
    _fill(backend, count=10)
    backend.execute("BEGIN")
    assert backend.transactions.in_transaction
    backend.execute("DELETE FROM t WHERE id >= 0")
    backend.execute("ROLLBACK")
    assert not backend.transactions.in_transaction
    assert backend.execute("SELECT COUNT(*) FROM t").rows == [(10,)]


def test_drop_table_clears_records():
    backend = _mk()
    _fill(backend, count=4)
    backend.execute("DROP TABLE t")
    for shard in backend.backends:
        assert not shard.has_table("t")
    # Re-creating starts clean (no routing, no stale DDL).
    backend.execute("CREATE TABLE t (id INTEGER)")
    backend.execute("INSERT INTO t (id) VALUES (9)")
    assert backend.backends[0].row_counts().get("t") == 1


def test_table_view_broadcasts_index_creation():
    backend = _mk()
    backend.table("t").create_index("id", ordered=True)
    for shard in backend.backends:
        assert "id" in shard.table("t").indexes.columns()


def test_stats_and_reset_counters():
    backend = _mk()
    _fill(backend)
    backend.execute("SELECT COUNT(*) FROM t")
    stats = backend.stats()
    assert stats["shards"] == 3 and stats["mode"] == "det-hash"
    assert sum(stats["rows_per_shard"]) == 30
    assert stats["routed_inserts"] == 1
    assert stats["scatter_selects"] >= 1
    backend.reset_counters()
    cleared = backend.stats()
    assert cleared["scatter_selects"] == 0 and cleared["routed_inserts"] == 0
    assert sum(cleared["rows_per_shard"]) == 30  # data survives a reset


def test_storage_and_row_counts_aggregate():
    backend = _mk()
    _fill(backend)
    assert backend.row_counts()["t"] == 30
    assert backend.storage_bytes() == sum(
        shard.storage_bytes() for shard in backend.backends
    )


def test_sqlite_base_shards_run_serially(tmp_path):
    paths = [str(tmp_path / f"shard{i}.db") for i in range(2)]
    backend = ShardedBackend(shards=2, base="sqlite", paths=paths)
    assert not backend._fanout.threads  # sqlite connections are thread-pinned
    backend.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
    backend.declare_routing("t", "id")
    backend.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)")
    assert backend.execute("SELECT SUM(v) FROM t").rows == [(60,)]
    result = backend.execute("SELECT id FROM t ORDER BY id DESC LIMIT 2")
    assert [row[0] for row in result.rows] == [3, 2]
    backend.close()


def test_single_shard_degenerates_gracefully():
    backend = ShardedBackend(shards=1)
    backend.execute("CREATE TABLE t (id INTEGER)")
    backend.declare_routing("t", "id")
    backend.execute("INSERT INTO t (id) VALUES (1), (2)")
    assert backend.execute("SELECT COUNT(*) FROM t").rows == [(2,)]


def test_invalid_shard_count_rejected():
    from repro.shard import ShardedBackendError

    with pytest.raises(ShardedBackendError):
        ShardedBackend(shards=0)

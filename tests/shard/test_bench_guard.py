"""Satellite regression: the bench guard must fail loudly on zero/missing
storage baselines instead of silently passing (the growth check divides by
the baseline, so a zero baseline used to short-circuit to an 'ok' note and
disable the guard for exactly the metric it watches)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

GUARD_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", GUARD_PATH)
guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(guard)


def _write(path: Path, payload: dict) -> Path:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_zero_baseline_fails_with_clear_message(tmp_path):
    baseline = _write(
        tmp_path / "BENCH_storage.json",
        {"quick_mode": True, "storage": {"bytes_per_row": 0}},
    )
    fresh = _write(
        tmp_path / "fresh_BENCH_storage.json",
        {"quick_mode": True, "storage": {"bytes_per_row": 512}},
    )
    failures, _notes = guard.compare_file(baseline, fresh, threshold=0.3)
    assert failures, "a zero storage baseline must fail, not silently pass"
    assert "zero/negative baseline" in failures[0]
    assert "regenerate baselines" in failures[0]


def test_fresh_only_storage_metric_fails(tmp_path):
    baseline = _write(
        tmp_path / "BENCH_storage.json",
        {"quick_mode": True, "storage": {"bytes_per_row": 100}},
    )
    fresh = _write(
        tmp_path / "fresh_BENCH_storage.json",
        {
            "quick_mode": True,
            "storage": {"bytes_per_row": 100},
            "cache": {"bytes_per_row": 64},  # new leaf, no baseline
        },
    )
    failures, _notes = guard.compare_file(baseline, fresh, threshold=0.3)
    assert any("has no baseline" in f for f in failures)


def test_healthy_storage_pair_still_passes(tmp_path):
    baseline = _write(
        tmp_path / "BENCH_storage.json",
        {"quick_mode": True, "storage": {"bytes_per_row": 100}},
    )
    fresh = _write(
        tmp_path / "fresh_BENCH_storage.json",
        {"quick_mode": True, "storage": {"bytes_per_row": 110}},
    )
    failures, notes = guard.compare_file(baseline, fresh, threshold=0.3)
    assert failures == []
    assert any(note.endswith("ok") for note in notes)


def test_excessive_growth_still_fails(tmp_path):
    baseline = _write(
        tmp_path / "BENCH_storage.json",
        {"quick_mode": True, "storage": {"bytes_per_row": 100}},
    )
    fresh = _write(
        tmp_path / "fresh_BENCH_storage.json",
        {"quick_mode": True, "storage": {"bytes_per_row": 150}},
    )
    failures, _notes = guard.compare_file(baseline, fresh, threshold=0.3)
    assert any("grew" in f for f in failures)

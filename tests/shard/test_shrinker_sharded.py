"""ddmin shrinker support for sharded streams, and the OFFSET satellite.

The naive sharding bug this PR fixes: pushing ``OFFSET m`` down to every
shard drops up to ``m * (shards - 1)`` rows that interleave ahead of other
shards' windows.  These tests re-introduce that planner (monkeypatched) and
assert the differential harness catches the divergence on a sharded lane
and ddmin-minimizes the reproducer; with the real planner the identical
stream is conformant."""

from __future__ import annotations

from dataclasses import replace

from repro.api.connection import connect
from repro.shard import ShardedBackend, merge as shard_merge
from repro.shard.router import ShardRouter
from repro.testing import DifferentialRunner
from repro.testing.generator import GeneratedStatement as S


def _lane_factory():
    """One single-node lane vs one 2-shard lane, both plaintext (no crypto:
    the scatter/merge path under test is identical, and probes stay cheap
    for the shrinker's many replays)."""

    def factory():
        sharded = ShardedBackend(shards=2)
        # No proxy in a plaintext lane, so declare the routing directly
        # (plaintext table/column names are the anonymized names).
        sharded.declare_routing("t", "id")
        return {
            "plain-memory": connect(encrypted=False, backend="memory"),
            "plain-sharded": connect(sharded, encrypted=False),
        }

    return factory


def _stream():
    ids = list(range(1, 13))
    router = ShardRouter(2)
    placements = {router.route(i) for i in ids}
    assert placements == {0, 1}, "test ids must span both shards"
    rows = ", ".join(f"({i}, {i * 10})" for i in ids)
    return [
        S("CREATE TABLE t (id INT, v INT)", kind="ddl"),
        S(f"INSERT INTO t (id, v) VALUES {rows}"),
        S("SELECT id FROM t ORDER BY id ASC", kind="select", ordered=True),
        S("SELECT COUNT(*) FROM t", kind="select"),
        # The probe: rows inside this window live on both shards.
        S(
            "SELECT id, v FROM t ORDER BY id ASC LIMIT 4 OFFSET 3",
            kind="select",
            ordered=True,
        ),
        S("SELECT SUM(v) FROM t", kind="select"),
    ]


def _naive_offset_planner():
    """The pre-fix planner: OFFSET/LIMIT pushed down per shard verbatim."""
    real = shard_merge.plan_row_scatter

    def naive(select, star_columns=None):
        plan = real(select, star_columns)
        if plan is None or plan.offset is None:
            return plan
        per_shard = replace(
            plan.per_shard, limit=select.limit, offset=select.offset
        )
        return shard_merge.RowScatterPlan(
            per_shard=per_shard,
            order=plan.order,
            hidden=plan.hidden,
            offset=None,  # nothing left for the merge to strip
            limit=None,
            distinct=plan.distinct,
        )

    return naive


def test_naive_per_shard_offset_diverges_and_minimizes(monkeypatch):
    monkeypatch.setattr(shard_merge, "plan_row_scatter", _naive_offset_planner())
    runner = DifferentialRunner(_lane_factory())
    report = runner.run_with_shrinking(_stream(), seed=41)
    assert not report.ok, "per-shard OFFSET must diverge on a 2-shard table"
    assert "OFFSET" in report.divergence.statement.sql
    # The shrinker works on sharded lanes: the reproducer keeps only the
    # schema, the data and the offending window.
    assert report.minimized is not None
    assert len(report.minimized) <= 3
    assert any("OFFSET" in s.sql for s in report.minimized)


def test_fixed_planner_is_conformant_on_the_same_stream():
    runner = DifferentialRunner(_lane_factory())
    report = runner.run_with_shrinking(_stream(), seed=41)
    assert report.ok, report.describe()
    assert report.selects_compared >= 4


def test_offset_window_spans_shards_end_to_end():
    """Direct value-level check of the fixed path (no harness)."""
    sharded = ShardedBackend(shards=2)
    sharded.declare_routing("t", "id")
    conn = connect(sharded, encrypted=False)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (id INT, v INT)")
    ids = list(range(1, 13))
    cur.execute(
        "INSERT INTO t (id, v) VALUES " + ", ".join(f"({i}, {i})" for i in ids)
    )
    cur.execute("SELECT id FROM t ORDER BY id ASC LIMIT 4 OFFSET 3")
    assert [row[0] for row in cur.fetchall()] == ids[3:7]

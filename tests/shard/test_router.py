"""ShardRouter unit tests: det-hash and ope-range placement."""

from __future__ import annotations

import pytest

from repro.shard.router import (
    DEFAULT_OPE_DOMAIN_BITS,
    ShardRouter,
    ShardRoutingError,
    _canonical_bytes,
)


def test_det_hash_is_stable_and_in_range():
    router = ShardRouter(5, mode="det-hash")
    cells = [b"\x01\x02", b"", 0, 12345, -7, "alpha", 3.5, True, None]
    first = [router.route(c) for c in cells]
    second = [router.route(c) for c in cells]
    assert first == second
    assert all(0 <= s < 5 for s in first)


def test_det_hash_equal_ciphertexts_colocate():
    """DET is deterministic, so equal plaintexts share shard placement."""
    router = ShardRouter(3)
    assert router.route(b"det-bytes") == router.route(b"det-bytes")
    assert router.route("x") == router.route("x")


def test_det_hash_distributes_distinct_keys():
    router = ShardRouter(4)
    shards = {router.route(f"key-{i}".encode()) for i in range(64)}
    assert shards == {0, 1, 2, 3}


def test_canonical_bytes_type_disambiguation():
    """1, "1", b"1" and 1.0 must not collide onto identical digests."""
    encodings = {
        _canonical_bytes(1),
        _canonical_bytes("1"),
        _canonical_bytes(b"1"),
        _canonical_bytes(1.0),
    }
    assert len(encodings) == 4


def test_ope_range_boundaries_partition_the_domain():
    shards = 4
    router = ShardRouter(shards, mode="ope-range")
    domain = 1 << DEFAULT_OPE_DOMAIN_BITS
    width = domain // shards
    # First value of each slice lands on its shard; last value too.
    for index in range(shards):
        low = index * width
        high = (index + 1) * width - 1
        assert router.route(low) == index
        assert router.route(high) == index
    assert router.route(0) == 0
    assert router.route(domain - 1) == shards - 1


def test_ope_range_preserves_order():
    """Monotone ciphertexts map to monotone (non-decreasing) shard indexes."""
    router = ShardRouter(3, mode="ope-range")
    step = (1 << DEFAULT_OPE_DOMAIN_BITS) // 97
    cells = [i * step for i in range(97)]
    placements = [router.route(c) for c in cells]
    assert placements == sorted(placements)


def test_ope_range_edge_cells():
    router = ShardRouter(3, mode="ope-range")
    assert router.route(None) == 0
    assert router.route(-5) == 0  # below-domain ciphertexts pin left
    # Non-integer cells under range routing fall back to hashing.
    assert 0 <= router.route("not-an-int") < 3
    assert 0 <= router.route(b"\xff") < 3
    # bool is an int subclass but routes via hash, not as 0/1 ciphertexts.
    assert 0 <= router.route(True) < 3


def test_null_cells_pin_to_shard_zero():
    for mode in ("det-hash", "ope-range"):
        assert ShardRouter(7, mode=mode).route(None) == 0


def test_single_shard_routes_everything_to_zero():
    router = ShardRouter(1)
    assert {router.route(v) for v in (None, 0, "a", b"b", 9.5)} == {0}


def test_invalid_configuration_rejected():
    with pytest.raises(ShardRoutingError):
        ShardRouter(0)
    with pytest.raises(ShardRoutingError):
        ShardRouter(2, mode="round-robin")

"""Merge-layer unit tests: homomorphic recombination, k-way heap, pushdown."""

from __future__ import annotations

import pytest

from repro.crypto.paillier import (
    PackingConfig,
    encode_partial_sums,
    is_partial_sum_blob,
)
from repro.shard.merge import (
    HomCombiner,
    RowScatterPlan,
    ShardMergeError,
    classify_aggregate_items,
    merge_aggregate_results,
    merge_row_results,
    plan_row_scatter,
)
from repro.sql import ast_nodes as ast
from repro.sql.executor import ResultSet


def _select(sql_items, **kwargs):
    return ast.Select(items=sql_items, from_clause=ast.TableRef("t"), **kwargs)


def _col_items(*names):
    return [ast.SelectItem(ast.ColumnRef(name)) for name in names]


# ---------------------------------------------------------------------------
# homomorphic partial-sum recombination
# ---------------------------------------------------------------------------
def test_scalar_hom_merge_equals_python_sum(paillier_keypair):
    """Per-shard Paillier partials multiply into Enc(total) -- public key only."""
    per_shard_sums = [[3, 5], [11], [7, 2, 9]]
    partials = [
        _product(paillier_keypair, values) for values in per_shard_sums
    ]
    combiner = HomCombiner(public_key=paillier_keypair.public)
    merged = combiner.combine(partials)
    expected = sum(v for shard in per_shard_sums for v in shard)
    assert paillier_keypair.decrypt(merged) == expected


def _product(keypair, values):
    total = 1
    for value in values:
        total = (total * keypair.encrypt(value)) % keypair.public.n_squared
    return total


def test_scalar_hom_merge_skips_empty_shards(paillier_keypair):
    combiner = HomCombiner(public_key=paillier_keypair.public)
    partial = paillier_keypair.encrypt(42)
    assert paillier_keypair.decrypt(combiner.combine([None, partial, None])) == 42
    assert combiner.combine([None, None]) is None  # SUM of zero rows is NULL


def test_scalar_hom_merge_requires_public_key(paillier_keypair):
    with pytest.raises(ShardMergeError):
        HomCombiner().combine([paillier_keypair.encrypt(1)])


def test_packed_hom_merge_concatenates_chunks(paillier_keypair):
    """Packed partials pool chunks; decrypting every chunk equals python sum.

    Chunk ciphertexts must NOT be multiplied together -- each chunk's count
    subfield has limited headroom -- so the merged value is a PSUM blob
    carrying all chunks from all shards.
    """
    config = PackingConfig()
    shard_chunks = [[4, 6], [10], [1, 2, 3]]
    partials = []
    for chunks in shard_chunks:
        ciphertexts = [paillier_keypair.encrypt(v) for v in chunks]
        partials.append(
            ciphertexts[0] if len(ciphertexts) == 1 else encode_partial_sums(ciphertexts)
        )
    merged = HomCombiner(paillier_keypair.public, config).combine(partials)
    assert is_partial_sum_blob(merged)
    from repro.crypto.paillier import decode_partial_sums

    decrypted = sum(paillier_keypair.decrypt(c) for c in decode_partial_sums(merged))
    assert decrypted == sum(v for chunks in shard_chunks for v in chunks)


def test_packed_hom_merge_single_chunk_stays_scalar(paillier_keypair):
    config = PackingConfig()
    partial = paillier_keypair.encrypt(9)
    merged = HomCombiner(paillier_keypair.public, config).combine([partial, None])
    assert isinstance(merged, int)
    assert paillier_keypair.decrypt(merged) == 9


# ---------------------------------------------------------------------------
# k-way ordered merge
# ---------------------------------------------------------------------------
def _rows(*rows):
    return ResultSet(["a", "b"], [tuple(r) for r in rows], len(rows))


def test_kway_merge_interleaves_sorted_streams():
    plan = RowScatterPlan(per_shard=None, order=[(0, True)])
    merged = merge_row_results(
        plan, [_rows((1, "x"), (4, "y")), _rows((2, "p")), _rows((3, "q"), (5, "r"))]
    )
    assert [row[0] for row in merged.rows] == [1, 2, 3, 4, 5]


def test_kway_merge_stable_on_duplicate_ope_keys():
    """Equal sort keys keep shard order: the merge is deterministic even when
    OPE ciphertexts collide (same plaintext on several shards)."""
    plan = RowScatterPlan(per_shard=None, order=[(0, True)])
    shard0 = _rows((7, "s0-a"), (7, "s0-b"))
    shard1 = _rows((7, "s1-a"))
    shard2 = _rows((7, "s2-a"), (9, "s2-b"))
    merged = merge_row_results(plan, [shard0, shard1, shard2])
    assert [row[1] for row in merged.rows] == ["s0-a", "s0-b", "s1-a", "s2-a", "s2-b"]
    # And identically when shard result objects arrive in the same order
    # again -- heapq.merge's tie-break is positional, not value-based.
    again = merge_row_results(plan, [shard0, shard1, shard2])
    assert merged.rows == again.rows


def test_kway_merge_descending_with_nulls_last():
    plan = RowScatterPlan(per_shard=None, order=[(0, False)])
    merged = merge_row_results(
        plan, [_rows((3, "x"), (None, "n1")), _rows((8, "y"), (1, "z"), (None, "n2"))]
    )
    assert [row[0] for row in merged.rows] == [8, 3, 1, None, None]


def test_merge_applies_offset_after_merge():
    """Satellite regression: OFFSET must discard *merged* rows, not per-shard
    rows.  With OFFSET 2 the dropped rows both come from different shards."""
    plan = RowScatterPlan(per_shard=None, order=[(0, True)], offset=2, limit=2)
    merged = merge_row_results(plan, [_rows((1, "a"), (4, "d")), _rows((2, "b"), (3, "c"))])
    assert [row[0] for row in merged.rows] == [3, 4]


def test_merge_strips_hidden_order_columns():
    plan = RowScatterPlan(per_shard=None, order=[(1, True)], hidden=1)
    merged = merge_row_results(plan, [_rows((10, 2)), _rows((20, 1))])
    assert merged.rows == [(20,), (10,)]
    assert merged.columns == ["a"]


def test_merge_distinct_dedupes_across_shards():
    plan = RowScatterPlan(per_shard=None, distinct=True)
    merged = merge_row_results(plan, [_rows((1, "x")), _rows((1, "x"), (2, "y"))])
    assert sorted(merged.rows) == [(1, "x"), (2, "y")]


# ---------------------------------------------------------------------------
# scatter planning (LIMIT/OFFSET pushdown)
# ---------------------------------------------------------------------------
def test_plan_pushes_offset_plus_limit_per_shard():
    """Satellite regression: each shard must fetch OFFSET+LIMIT candidates
    and keep no per-shard OFFSET -- a pushed-down OFFSET silently drops rows
    that interleave ahead of another shard's."""
    select = _select(
        _col_items("a", "b"),
        order_by=[ast.OrderItem(ast.ColumnRef("a"))],
        limit=5,
        offset=3,
    )
    plan = plan_row_scatter(select)
    assert plan.per_shard.limit == 8  # OFFSET + LIMIT candidates per shard
    assert plan.per_shard.offset is None  # never pushed down
    assert plan.offset == 3 and plan.limit == 5  # applied post-merge


def test_plan_resolves_order_through_aliases_and_star():
    aliased = ast.Select(
        items=[ast.SelectItem(ast.ColumnRef("a"), alias="x")],
        from_clause=ast.TableRef("t"),
        order_by=[ast.OrderItem(ast.ColumnRef("x"), ascending=False)],
    )
    plan = plan_row_scatter(aliased)
    assert plan.order == [(0, False)]

    star = ast.Select(
        items=[ast.SelectItem(ast.Star())],
        from_clause=ast.TableRef("t"),
        order_by=[ast.OrderItem(ast.ColumnRef("b"))],
    )
    plan = plan_row_scatter(star, star_columns=["a", "b", "c"])
    assert plan.order == [(1, True)]


def test_plan_appends_hidden_column_for_unprojected_order_key():
    select = _select(
        _col_items("a"),
        order_by=[ast.OrderItem(ast.ColumnRef("b"))],
    )
    plan = plan_row_scatter(select)
    assert plan.hidden == 1
    assert len(plan.per_shard.items) == 2
    assert plan.order == [(1, True)]


def test_plan_refuses_unsafe_scatters():
    # LIMIT without a total order cannot merge deterministically.
    assert plan_row_scatter(_select(_col_items("a"), limit=3)) is None
    # DISTINCT under LIMIT: cross-shard duplicates could under-fill windows.
    assert (
        plan_row_scatter(
            _select(
                _col_items("a"),
                order_by=[ast.OrderItem(ast.ColumnRef("a"))],
                limit=3,
                distinct=True,
            )
        )
        is None
    )
    # Non-aggregate GROUP BY dedupes across shards; scatter can't.
    assert (
        plan_row_scatter(_select(_col_items("a"), group_by=[ast.ColumnRef("a")]))
        is None
    )
    # Unresolvable ORDER BY on a * projection: unknown width, no hidden slot.
    assert (
        plan_row_scatter(
            ast.Select(
                items=[ast.SelectItem(ast.Star())],
                from_clause=ast.TableRef("t"),
                order_by=[ast.OrderItem(ast.ColumnRef("zz"))],
            )
        )
        is None
    )


# ---------------------------------------------------------------------------
# aggregate recombination
# ---------------------------------------------------------------------------
def test_grouped_aggregates_recombine_per_group(paillier_keypair):
    from repro.core import udfs

    select = ast.Select(
        items=[
            ast.SelectItem(ast.ColumnRef("g")),
            ast.SelectItem(ast.FunctionCall("COUNT", [ast.Star()])),
            ast.SelectItem(ast.FunctionCall(udfs.HOM_SUM, [ast.ColumnRef("v")])),
        ],
        from_clause=ast.TableRef("t"),
        group_by=[ast.ColumnRef("g")],
    )
    specs = classify_aggregate_items(select)
    assert specs == [None, "COUNT", udfs.HOM_SUM]
    columns = ["g", "COUNT(*)", "SUM(v)"]
    shard0 = ResultSet(columns, [("alpha", 2, _product(paillier_keypair, [1, 2]))], 1)
    shard1 = ResultSet(
        columns,
        [
            ("alpha", 1, _product(paillier_keypair, [4])),
            ("beta", 3, _product(paillier_keypair, [5, 5, 5])),
        ],
        2,
    )
    merged = merge_aggregate_results(
        select, specs, [shard0, shard1], HomCombiner(paillier_keypair.public)
    )
    by_group = {row[0]: row for row in merged.rows}
    assert by_group["alpha"][1] == 3
    assert paillier_keypair.decrypt(by_group["alpha"][2]) == 7
    assert by_group["beta"][1] == 3
    assert paillier_keypair.decrypt(by_group["beta"][2]) == 15


def test_min_max_count_recombination():
    select = ast.Select(
        items=[
            ast.SelectItem(ast.FunctionCall("MIN", [ast.ColumnRef("o")])),
            ast.SelectItem(ast.FunctionCall("MAX", [ast.ColumnRef("o")])),
            ast.SelectItem(ast.FunctionCall("COUNT", [ast.ColumnRef("o")])),
        ],
        from_clause=ast.TableRef("t"),
    )
    specs = classify_aggregate_items(select)
    columns = ["MIN(o)", "MAX(o)", "COUNT(o)"]
    shards = [
        ResultSet(columns, [(5, 90, 4)], 1),
        ResultSet(columns, [(None, None, 0)], 1),  # empty shard: NULL extrema
        ResultSet(columns, [(2, 40, 2)], 1),
    ]
    merged = merge_aggregate_results(select, specs, shards, HomCombiner())
    assert merged.rows == [(2, 90, 6)]


def test_unmergeable_aggregates_classify_to_none():
    distinct_count = ast.Select(
        items=[
            ast.SelectItem(
                ast.FunctionCall("COUNT", [ast.ColumnRef("a")], distinct=True)
            )
        ],
        from_clause=ast.TableRef("t"),
    )
    assert classify_aggregate_items(distinct_count) is None
    plain_avg = ast.Select(
        items=[ast.SelectItem(ast.FunctionCall("AVG", [ast.ColumnRef("a")]))],
        from_clause=ast.TableRef("t"),
    )
    assert classify_aggregate_items(plain_avg) is None

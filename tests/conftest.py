"""Shared fixtures: session Paillier key pair, proxy factories, seeding.

Paillier key generation is the only expensive setup step, so a single
512-bit key pair (fast, still exercising every code path) is shared by all
tests; benchmarks use the paper's 1024-bit modulus.

Randomness policy: every source of test randomness derives from one seed.
``--repro-seed=N`` (default :data:`DEFAULT_REPRO_SEED`) feeds the conformance
generator directly and re-seeds :mod:`random` per test from
``(seed, test id)``; Hypothesis runs derandomized so crypto property tests
replay identically.  The active seed is echoed into every failing test's
report so ``pytest --repro-seed=N path::test`` reproduces the run.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.proxy import CryptDBProxy
from repro.crypto.keys import MasterKey
from repro.crypto.paillier import PaillierKeyPair
from repro.principals.multi_proxy import MultiPrincipalProxy
from repro.sql.engine import Database

#: Default conformance/property seed; override with --repro-seed.
DEFAULT_REPRO_SEED = 20110023

try:  # pragma: no cover - exercised implicitly by the property tests
    from hypothesis import settings as _hypothesis_settings

    _hypothesis_settings.register_profile("repro", derandomize=True)
    _hypothesis_settings.load_profile("repro")
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        action="store",
        type=int,
        default=DEFAULT_REPRO_SEED,
        help="master seed for conformance streams and test randomness "
        f"(default {DEFAULT_REPRO_SEED})",
    )


@pytest.fixture(scope="session")
def repro_seed(request) -> int:
    return request.config.getoption("--repro-seed")


@pytest.fixture(autouse=True)
def _seed_stdlib_random(request):
    """Give every test a deterministic, test-specific ``random`` state."""
    seed = request.config.getoption("--repro-seed", default=DEFAULT_REPRO_SEED)
    random.seed(f"{seed}:{request.node.nodeid}")
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Echo the active seed on failures so runs are one flag away from replay."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        seed = item.config.getoption("--repro-seed", default=DEFAULT_REPRO_SEED)
        report.sections.append(
            ("repro seed", f"rerun with: pytest --repro-seed={seed} {item.nodeid}")
        )


@pytest.fixture(autouse=True)
def _faults_disarmed():
    """No test may leak an armed fault injector into the next one."""
    from repro import faults

    yield
    faults.disarm()


def wait_until(
    predicate,
    timeout: float = 10.0,
    interval: float = 0.01,
    message: str = "condition",
) -> None:
    """Poll ``predicate`` until true or fail after ``timeout`` seconds.

    The shared replacement for bare ``time.sleep`` waits: it returns the
    moment the condition holds (fast on fast machines) and produces a real
    assertion message instead of a flaky race on slow ones.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout:g}s waiting for {message}")


@pytest.fixture(name="wait_until", scope="session")
def wait_until_fixture():
    return wait_until


@pytest.fixture(scope="session")
def paillier_keypair() -> PaillierKeyPair:
    return PaillierKeyPair.generate(512)


@pytest.fixture()
def database() -> Database:
    return Database()


@pytest.fixture()
def make_proxy(paillier_keypair):
    """Factory for CryptDB proxies sharing the session Paillier key pair."""

    def factory(**kwargs) -> CryptDBProxy:
        kwargs.setdefault("paillier", paillier_keypair)
        kwargs.setdefault("master_key", MasterKey.from_passphrase("test-master-key"))
        return CryptDBProxy(**kwargs)

    return factory


@pytest.fixture()
def proxy(make_proxy) -> CryptDBProxy:
    return make_proxy()


@pytest.fixture()
def multi_proxy(paillier_keypair) -> MultiPrincipalProxy:
    mp = MultiPrincipalProxy.__new__(MultiPrincipalProxy)
    # Build manually so the inner proxy reuses the session Paillier key pair.
    from repro.principals.keychain import KeyChain

    mp.db = Database()
    mp.inner = CryptDBProxy(mp.db, master_key=MasterKey.from_passphrase("mp-test"),
                            paillier=paillier_keypair)
    mp.keychain = KeyChain(mp.db)
    mp.schema = None
    mp.logged_in = {}
    mp._predicates = {}
    from repro.sql.functions import FunctionRegistry

    mp._predicate_functions = FunctionRegistry()
    mp.lines_of_code_changed = 0
    return mp

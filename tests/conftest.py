"""Shared fixtures: a session-wide Paillier key pair and proxy factories.

Paillier key generation is the only expensive setup step, so a single
512-bit key pair (fast, still exercising every code path) is shared by all
tests; benchmarks use the paper's 1024-bit modulus.
"""

from __future__ import annotations

import pytest

from repro.core.proxy import CryptDBProxy
from repro.crypto.keys import MasterKey
from repro.crypto.paillier import PaillierKeyPair
from repro.principals.multi_proxy import MultiPrincipalProxy
from repro.sql.engine import Database


@pytest.fixture(scope="session")
def paillier_keypair() -> PaillierKeyPair:
    return PaillierKeyPair.generate(512)


@pytest.fixture()
def database() -> Database:
    return Database()


@pytest.fixture()
def make_proxy(paillier_keypair):
    """Factory for CryptDB proxies sharing the session Paillier key pair."""

    def factory(**kwargs) -> CryptDBProxy:
        kwargs.setdefault("paillier", paillier_keypair)
        kwargs.setdefault("master_key", MasterKey.from_passphrase("test-master-key"))
        return CryptDBProxy(**kwargs)

    return factory


@pytest.fixture()
def proxy(make_proxy) -> CryptDBProxy:
    return make_proxy()


@pytest.fixture()
def multi_proxy(paillier_keypair) -> MultiPrincipalProxy:
    mp = MultiPrincipalProxy.__new__(MultiPrincipalProxy)
    # Build manually so the inner proxy reuses the session Paillier key pair.
    from repro.principals.keychain import KeyChain

    mp.db = Database()
    mp.inner = CryptDBProxy(mp.db, master_key=MasterKey.from_passphrase("mp-test"),
                            paillier=paillier_keypair)
    mp.keychain = KeyChain(mp.db)
    mp.schema = None
    mp.logged_in = {}
    mp._predicates = {}
    from repro.sql.functions import FunctionRegistry

    mp._predicate_functions = FunctionRegistry()
    mp.lines_of_code_changed = 0
    return mp

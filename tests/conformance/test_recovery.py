"""The recovery conformance lane: long streams killed at every crash point.

Each test replays one seeded RECOVERY_STATEMENTS-long stream through a
catalog-backed proxy over *file-backed* storage (plain SQLite, and a
3-shard deployment), kills the process at a named crash point -- unsynced
WAL records die, the backend connection drops -- then rebuilds the proxy
from snapshot+WAL against the surviving files and finishes the stream.
The acceptance bar, straight from the durability issue: zero divergence
and zero metadata mismatch against an uninterrupted shadow, and every
in-doubt two-phase onion adjustment resolved during recovery.

``RECOVERY_STATEMENTS`` scales the stream (CI's recovery-quick job
runs 300).
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.crypto.keys import MasterKey
from repro.testing import RecoveryRunner, StatementGenerator

RECOVERY_STATEMENTS = int(os.environ.get("RECOVERY_STATEMENTS", "120"))

#: WAL sites fire on every record, so crash deep into the stream -- after
#: snapshots have been taken and adjustments have resolved.  The adjust.*
#: sites fire once per onion transition and snapshot.write once per
#: compaction (a handful per stream each), so only shallow hits are
#: guaranteed to exist for them.
AT_HIT = max(2, RECOVERY_STATEMENTS // 20)


def _at_hit(crash_site: str) -> int:
    if crash_site.startswith("adjust."):
        return 1
    if crash_site == "snapshot.write":
        return 2
    return AT_HIT


@pytest.fixture()
def run_lane(tmp_path, repro_seed, paillier_keypair):
    def run(crash_site: str, mode: str, *, offset: int):
        at_hit = _at_hit(crash_site)
        stream = StatementGenerator(repro_seed + offset, tables=2).generate_stream(
            RECOVERY_STATEMENTS
        )
        runner = RecoveryRunner(
            tmp_path,
            crash_site,
            mode=mode,
            at_hit=at_hit,
            seed=repro_seed,
            master_key=MasterKey.from_passphrase("recovery-lane"),
            paillier=paillier_keypair,
        )
        report = runner.run(stream)
        assert report.crashed, report.describe()
        assert report.ok, report.describe()
        assert report.selects_compared > 0, report.describe()
        return report

    return run


@pytest.mark.parametrize("crash_site", faults.CRASH_SITES)
def test_recovery_lane_sqlite(run_lane, crash_site):
    offset = 10 + list(faults.CRASH_SITES).index(crash_site)
    report = run_lane(crash_site, "packed", offset=offset)
    if crash_site.startswith("adjust."):
        assert report.in_doubt_resolved >= 1, report.describe()


@pytest.mark.parametrize("crash_site", faults.CRASH_SITES)
def test_recovery_lane_sharded(run_lane, crash_site):
    offset = 20 + list(faults.CRASH_SITES).index(crash_site)
    report = run_lane(crash_site, "sharded", offset=offset)
    if crash_site.startswith("adjust."):
        assert report.in_doubt_resolved >= 1, report.describe()

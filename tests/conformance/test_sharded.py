"""Differential conformance for the enc-sharded lane (scatter-gather).

A 3-shard :class:`~repro.shard.ShardedBackend` behind the encrypted proxy
answers the same generated streams as the single-backend lanes: routed
inserts, k-way ordered merges with post-merge OFFSET, homomorphic
partial-sum recombination and broadcast fallbacks may change the execution
topology but never the answers -- including while a ``pool.scatter`` fault
plan is degrading scatters to serial execution mid-stream.

``CONFORMANCE_STATEMENTS`` scales the stream; CI's sharded-quick job runs
500 across 3 shards per the acceptance bar.
"""

from __future__ import annotations

import os

from repro import faults
from repro.api.connection import connect
from repro.crypto.keys import MasterKey
from repro.shard import ShardedBackend
from repro.testing import DifferentialRunner, StatementGenerator

QUICK_STATEMENTS = int(os.environ.get("CONFORMANCE_STATEMENTS", "520"))
SHARDS = int(os.environ.get("CONFORMANCE_SHARDS", "3"))


def _factory(paillier_keypair, capture: list, mode: str = "det-hash"):
    """Slim three-lane factory: ground truth, single encrypted, sharded."""
    shared = dict(
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("sharded-conformance"),
        hom_precompute=8,
    )

    def factory():
        backend = ShardedBackend(shards=SHARDS, mode=mode)
        capture.clear()
        capture.append(backend)
        return {
            "plain-memory": connect(encrypted=False, backend="memory"),
            "enc-memory": connect(backend="memory", **shared),
            "enc-sharded": connect(backend=backend, **shared),
        }

    return factory


def test_sharded_lane_is_wired_through_default_factory(paillier_keypair):
    from repro.testing import default_lane_factory

    lanes = default_lane_factory(
        sharded=3,
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("lane-wiring"),
        hom_precompute=4,
    )()
    try:
        assert "enc-sharded" in lanes
        backend = lanes["enc-sharded"].proxy.db
        assert backend.is_sharded and backend.shard_count == 3
        # The proxy handed the merge layer its public key at construction.
        assert backend._hom.public_key is not None
        assert lanes["enc-sharded"].proxy.stats.shard is backend
    finally:
        for conn in lanes.values():
            conn.close()


def test_sharded_conformance_quick_mode(paillier_keypair, repro_seed):
    capture: list = []
    runner = DifferentialRunner(_factory(paillier_keypair, capture))
    stream = StatementGenerator(seed=repro_seed, tables=3).generate_stream(
        QUICK_STATEMENTS
    )
    report = runner.run_with_shrinking(stream, seed=repro_seed)
    assert report.ok, report.describe()
    assert report.statements_executed >= QUICK_STATEMENTS
    assert report.selects_compared >= QUICK_STATEMENTS // 5
    backend = capture[0]
    # The lane must genuinely shard and scatter, not degenerate to one node.
    assert backend.shard_count == SHARDS
    assert backend.counters["scatter_selects"] > 0
    assert backend.counters["routed_inserts"] > 0
    occupied = sum(1 for rows in backend.stats()["rows_per_shard"] if rows)
    assert occupied > 1, "generated data must spread over several shards"


def test_sharded_conformance_under_scatter_faults(paillier_keypair, repro_seed):
    """The acceptance bar's fault run: a pool.scatter plan forces scatter
    degradation mid-stream and the lane must still match answer for answer."""
    capture: list = []
    runner = DifferentialRunner(_factory(paillier_keypair, capture))
    stream = StatementGenerator(seed=repro_seed + 1, tables=2).generate_stream(
        max(QUICK_STATEMENTS // 4, 80)
    )
    plan = faults.FaultPlan(
        repro_seed, [faults.FaultRule("pool.scatter", probability=0.25)]
    )
    with faults.armed(plan) as injector:
        report = runner.run(stream)
    assert report.ok, report.describe()
    backend = capture[0]
    fired = sum(1 for f in injector.fired if f.site == "pool.scatter")
    assert fired > 0, "the plan must actually have injected scatter faults"
    assert backend.counters["scatter_fallbacks"] > 0
    # Degraded statements still merged: fallbacks never became refusals.
    assert report.refused_by_proxy == 0 or report.ok


def test_ope_range_mode_conforms(paillier_keypair, repro_seed):
    """Range placement (contiguous OPE slices) answers identically too."""
    capture: list = []
    runner = DifferentialRunner(
        _factory(paillier_keypair, capture, mode="ope-range")
    )
    stream = StatementGenerator(seed=repro_seed + 2, tables=2).generate_stream(
        max(QUICK_STATEMENTS // 4, 80)
    )
    report = runner.run_with_shrinking(stream, seed=repro_seed + 2)
    assert report.ok, report.describe()
    assert capture[0].mode == "ope-range"


def test_cross_shard_left_join_stream(paillier_keypair, repro_seed):
    """Satellite regression, lane level: LEFT JOINs whose right side lives
    on other shards (or nowhere at all) must null-extend like one backend."""
    from repro.testing.generator import GeneratedStatement as S

    capture: list = []
    runner = DifferentialRunner(_factory(paillier_keypair, capture))
    stream = [
        S("CREATE TABLE orders (id INT, cust INT, total INT)", kind="ddl"),
        S("CREATE TABLE custs (id INT, name VARCHAR(16))", kind="ddl"),
        S("CREATE TABLE ghosts (id INT, note VARCHAR(16))", kind="ddl"),
        S(
            "INSERT INTO orders (id, cust, total) VALUES "
            + ", ".join(f"({i}, {i % 4}, {i * 7})" for i in range(1, 13))
        ),
        # A single customer row: it lives on exactly one shard, while the
        # orders probing it are spread across all three.
        S("INSERT INTO custs (id, name) VALUES (2, 'solo')"),
        S(
            "SELECT orders.id, custs.name FROM orders "
            "LEFT JOIN custs ON orders.cust = custs.id "
            "ORDER BY orders.id ASC",
            kind="select",
            ordered=True,
        ),
        # ghosts is empty everywhere: every left row must null-extend.
        S(
            "SELECT orders.id, ghosts.note FROM orders "
            "LEFT JOIN ghosts ON orders.id = ghosts.id "
            "ORDER BY orders.id ASC",
            kind="select",
            ordered=True,
        ),
        S("SELECT COUNT(*) FROM orders", kind="select"),
    ]
    report = runner.run(stream)
    assert report.ok, report.describe()
    backend = capture[0]
    assert backend.counters["broadcast_selects"] >= 2
    occupied = sum(1 for rows in backend.stats()["rows_per_shard"] if rows)
    assert occupied > 1

"""Shrinker behavior: ddmin minimization, and end-to-end failure reporting."""

from __future__ import annotations

from repro.api.connection import connect
from repro.testing import DifferentialRunner, shrink_stream
from repro.testing.generator import GeneratedStatement as S


def test_ddmin_finds_single_culprit():
    culprit = 37
    statements = list(range(100))

    def still_fails(candidate):
        return culprit in candidate

    assert shrink_stream(statements, still_fails) == [culprit]


def test_ddmin_keeps_interacting_pair():
    statements = list(range(60))

    def still_fails(candidate):
        return 5 in candidate and 42 in candidate

    assert shrink_stream(statements, still_fails) == [5, 42]


def test_ddmin_respects_probe_budget():
    probes = []

    def still_fails(candidate):
        probes.append(len(candidate))
        return 7 in candidate

    result = shrink_stream(list(range(1000)), still_fails, max_probes=10)
    assert len(probes) <= 10
    assert 7 in result  # best-effort reduction still reproduces


def _plain_lanes():
    """Two plaintext lanes only -- cheap, no crypto."""
    return {
        "plain-memory": connect(encrypted=False, backend="memory"),
        "plain-sqlite": connect(encrypted=False, backend="sqlite"),
    }


def test_divergence_is_reported_and_minimized():
    """A genuine dialect divergence is caught, shrunk, and attributed.

    ``SELECT 7 / 2`` is 3.5 in the engine (true division, MySQL-style) but 3
    in SQLite (integer division): a real divergence the generator never
    emits, which makes it a perfect end-to-end probe of detect + shrink.
    """
    runner = DifferentialRunner(_plain_lanes)
    noise = [
        S("CREATE TABLE n (id INT, v INT)", kind="ddl"),
        S("INSERT INTO n (id, v) VALUES (1, 10), (2, 20)"),
        S("SELECT * FROM n ORDER BY id ASC", kind="select", ordered=True),
        S("UPDATE n SET v = 30 WHERE id = 1"),
        S("SELECT COUNT(*) FROM n", kind="select"),
    ]
    stream = noise[:3] + [S("SELECT 7 / 2 FROM n", kind="select")] + noise[3:]
    report = runner.run_with_shrinking(stream, seed=123)
    assert not report.ok
    assert report.seed == 123
    assert "SELECT 7 / 2" in report.divergence.statement.sql
    # Auto-minimized before being reported: only the statements needed to
    # reproduce remain (CREATE TABLE + one INSERTless probe needs a row).
    assert report.minimized is not None
    assert len(report.minimized) <= 3
    assert any("7 / 2" in s.sql for s in report.minimized)
    assert f"--repro-seed={123}" in report.describe()


def test_conformant_stream_reports_clean():
    runner = DifferentialRunner(_plain_lanes)
    stream = [
        S("CREATE TABLE c (id INT, v INT)", kind="ddl"),
        S("INSERT INTO c (id, v) VALUES (1, 1)"),
        S("SELECT * FROM c ORDER BY id ASC", kind="select", ordered=True),
    ]
    report = runner.run(stream)
    assert report.ok
    assert report.statements_executed == 3
    assert "conformant" in report.describe()

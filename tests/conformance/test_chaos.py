"""The chaos conformance lane: differential testing under injected faults.

One seeded statement stream replays through :class:`ChaosRunner`: a real
loopback ``repro.server`` stack with a deterministic fault plan armed
(:mod:`repro.faults`) against an identical fault-free shadow proxy.  The
acceptance bar, straight from the robustness issue:

* every statement produces the fault-free answer or fails with a *clean*
  DB-API error -- never a dirty crash, never a silently wrong answer;
* after every injected fault an invariant probe asserts proxy metadata and
  backend state still agree (table contents, HOM-driven SUMs, symmetric
  refusals, no stale plan-cache entry surviving a lookup sweep).

Three plans cover the three layers: the encrypted wire (send/recv faults,
forcing client reconnects and transparent SELECT retries), the server and
backend (admission and execution errors plus sabotaged Paillier refills),
and the crypto worker pool (scatter failures falling back to serial).

``CHAOS_STATEMENTS`` scales each stream (CI's chaos-quick job runs 300).
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.crypto.keys import MasterKey
from repro.parallel import ParallelConfig
from repro.testing import ChaosRunner, StatementGenerator, conformance_problems

CHAOS_STATEMENTS = int(os.environ.get("CHAOS_STATEMENTS", "120"))


def _stream(seed: int, offset: int):
    return StatementGenerator(seed + offset, tables=2).generate_stream(
        CHAOS_STATEMENTS
    )


def _runner(plan, paillier_keypair, **server_kwargs) -> ChaosRunner:
    shared = dict(
        paillier=paillier_keypair,
        hom_precompute=8,
    )
    return ChaosRunner(
        plan,
        server_kwargs={
            "master_key": MasterKey.from_passphrase("chaos-lane"),
            **shared,
            **server_kwargs,
        },
        shadow_kwargs={
            "master_key": MasterKey.from_passphrase("chaos-shadow"),
            **shared,
        },
    )


def _assert_conformant(report):
    assert report.ok, report.describe()
    # The plan must have actually exercised the machinery, not idled.
    assert report.faults_injected > 0, report.describe()
    assert report.invariant_checks > 0
    assert report.selects_compared > 0


# ---------------------------------------------------------------------------
# plan 1: the encrypted wire
# ---------------------------------------------------------------------------
def transport_plan(seed: int) -> faults.FaultPlan:
    return faults.FaultPlan(
        seed,
        [
            # Pre-send failures: nothing reached the server, any frame is a
            # safe victim.  The client reconnects and either retries
            # (SELECT) or reports the statement unapplied.
            faults.FaultRule(
                "transport.send", probability=0.04, match={"role": ("client",)}
            ),
            # Post-execution failures are only conformance-safe on reads...
            faults.FaultRule(
                "transport.recv",
                probability=0.10,
                match={"head": ("SELECT", "FETCH", "PREPARE", "STATS")},
            ),
            # ...or inside an explicit transaction (server-side rollback on
            # disconnect), as long as the COMMIT ack is never the victim.
            faults.FaultRule(
                "transport.recv",
                probability=0.08,
                match={"in_txn": (True,)},
                exclude={"frame": ("COMMIT",)},
            ),
        ],
    )


def test_chaos_transport(repro_seed, paillier_keypair):
    report = _runner(transport_plan(repro_seed), paillier_keypair).run(
        _stream(repro_seed, offset=1)
    )
    _assert_conformant(report)
    # Wire faults must have forced the self-healing client into action.
    assert report.client_reconnects > 0, report.describe()


# ---------------------------------------------------------------------------
# plan 2: server admission + backend execution + paillier refill
# ---------------------------------------------------------------------------
def server_backend_plan(seed: int) -> faults.FaultPlan:
    return faults.FaultPlan(
        seed,
        [
            faults.FaultRule("server.session.execute", probability=0.05),
            faults.FaultRule("backend.execute", probability=0.04),
            faults.FaultRule("paillier.refill", probability=0.5),
        ],
    )


def test_chaos_server_and_backend(repro_seed, paillier_keypair):
    report = _runner(server_backend_plan(repro_seed), paillier_keypair).run(
        _stream(repro_seed, offset=2)
    )
    _assert_conformant(report)
    # These faults surface as clean per-statement errors, not disconnects.
    assert report.chaos_errors > 0, report.describe()


# ---------------------------------------------------------------------------
# plan 3: the crypto worker pool
# ---------------------------------------------------------------------------
def pool_plan(seed: int) -> faults.FaultPlan:
    return faults.FaultPlan(
        seed,
        [
            # Default pool.scatter exception is ParallelUnavailable: the
            # encryptor must fall back to serial crypto and the statement
            # must still succeed with identical ciphertext semantics.
            faults.FaultRule("pool.scatter", every_n=2),
        ],
    )


def test_chaos_pool_scatter(repro_seed, paillier_keypair):
    runner = _runner(
        pool_plan(repro_seed),
        paillier_keypair,
        parallelism=ParallelConfig(
            workers=2, chunk_threshold=4, scatter_timeout=20.0
        ),
    )
    report = runner.run(_stream(repro_seed, offset=3))
    _assert_conformant(report)


# ---------------------------------------------------------------------------
# plan soundness guard-rails
# ---------------------------------------------------------------------------
def test_unrestricted_recv_plan_rejected(repro_seed):
    """A recv-error rule without head/txn restriction is rejected outright.

    Such a fault fires after the server applied a write but before the
    client learns of it -- the statement's fate is ambiguous and no
    conformance verdict is sound.
    """
    bad = faults.FaultPlan(
        repro_seed, [faults.FaultRule("transport.recv", probability=0.1)]
    )
    assert conformance_problems(bad)
    with pytest.raises(ValueError, match="conformance-safe"):
        ChaosRunner(bad)


def test_conformance_plans_are_safe(repro_seed):
    for plan in (
        transport_plan(repro_seed),
        server_backend_plan(repro_seed),
        pool_plan(repro_seed),
    ):
        assert conformance_problems(plan) == []

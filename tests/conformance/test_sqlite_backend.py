"""Direct tests of the sqlite3 backend adapter: codec, DDL, UDFs, txns."""

from __future__ import annotations

import pytest

from repro.api.backends import create_backend, resolve_backend
from repro.api.connection import connect
from repro.api.sqlite_backend import SQLiteBackend, decode_value, encode_value
from repro.errors import SQLExecutionError
from repro.sql import ast_nodes as ast


@pytest.fixture()
def backend() -> SQLiteBackend:
    return SQLiteBackend()


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "value",
    [
        None,
        0,
        -1,
        2**63 - 1,
        -(2**63),
        2**63,
        2**64 - 1,
        2**2048 + 12345,          # Paillier-ciphertext sized
        -(2**70),
        3.5,
        "text",
        "ωμέγα 東京",
        b"",
        b"\x00\x01\xff",
        True,
        False,
    ],
)
def test_codec_roundtrip(value):
    expected = int(value) if isinstance(value, bool) else value
    assert decode_value(encode_value(value)) == expected


def test_codec_is_order_preserving_over_unsigned_64(backend):
    """The Ord onion's [0, 2**64) domain survives ORDER BY and MIN/MAX."""
    values = [0, 5, 2**62, 2**63 - 1, 2**63, 2**63 + 1, 2**64 - 1]
    backend.execute("CREATE TABLE ord_t (x BIGINT)")
    rows = [[ast.Literal(v)] for v in values]
    backend.execute(ast.Insert("ord_t", ["x"], rows))
    result = backend.execute(
        ast.Select(
            [ast.SelectItem(ast.ColumnRef("x"))],
            ast.TableRef("ord_t"),
            order_by=[ast.OrderItem(ast.ColumnRef("x"), ascending=False)],
        )
    )
    assert [row[0] for row in result.rows] == sorted(values, reverse=True)
    assert backend.execute("SELECT MAX(x) FROM ord_t").scalar() == 2**64 - 1
    assert backend.execute("SELECT MIN(x) FROM ord_t").scalar() == 0


# ---------------------------------------------------------------------------
# schema / statements
# ---------------------------------------------------------------------------
def test_ddl_and_catalog(backend):
    assert backend.table_names() == []
    backend.execute("CREATE TABLE a (id INT, v VARCHAR(10))")
    backend.execute("CREATE TABLE b (id INT)")
    assert backend.table_names() == ["a", "b"]
    assert backend.has_table("a") and not backend.has_table("zz")
    backend.execute("CREATE TABLE IF NOT EXISTS a (id INT, v VARCHAR(10))")
    backend.execute("DROP TABLE b")
    assert backend.table_names() == ["a"]
    backend.execute("DROP TABLE IF EXISTS b")
    with pytest.raises(SQLExecutionError):
        backend.execute("DROP TABLE b")
    with pytest.raises(SQLExecutionError):
        backend.table("zz")


def test_indexes_and_table_shim(backend):
    backend.execute("CREATE TABLE t (id INT, qty INT)")
    backend.execute("INSERT INTO t (id, qty) VALUES (1, 10), (2, 20), (3, NULL)")
    table = backend.table("t")
    table.create_index("id")
    table.create_index("id")  # idempotent
    backend.execute(ast.CreateIndex("idx_multi", "t", ["id", "qty"]))
    assert table.row_count() == 3
    assert table.column_names == ["id", "qty"]
    assert table.has_column("qty") and not table.has_column("nope")
    assert table.storage_bytes() > 0
    assert backend.storage_bytes() > 0
    assert backend.row_counts() == {"t": 3}


def test_dml_rowcounts_and_select(backend):
    backend.execute("CREATE TABLE t (id INT, v INT)")
    inserted = backend.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)")
    assert inserted.rowcount == 3
    updated = backend.execute("UPDATE t SET v = 99 WHERE id >= 2")
    assert updated.rowcount == 2
    deleted = backend.execute("DELETE FROM t WHERE id = 1")
    assert deleted.rowcount == 1
    result = backend.execute("SELECT id, v FROM t ORDER BY id ASC")
    assert result.columns == ["id", "v"]
    assert result.rows == [(2, 99), (3, 99)]
    assert backend.statements_executed == 5


def test_execute_script(backend):
    results = backend.execute_script(
        "CREATE TABLE s (id INT); INSERT INTO s (id) VALUES (1); "
        "SELECT id FROM s"
    )
    assert len(results) == 3
    assert results[-1].rows == [(1,)]


# ---------------------------------------------------------------------------
# UDFs
# ---------------------------------------------------------------------------
def test_scalar_udf_crosses_the_codec(backend):
    backend.execute("CREATE TABLE u (x BLOB)")
    backend.execute(ast.Insert("u", ["x"], [[ast.Literal(b"\x01\x02")], [ast.Literal(None)]]))

    def double_bytes(value):
        return None if value is None else value + value

    backend.register_scalar_udf("DOUBLE_BYTES", double_bytes)
    result = backend.execute("SELECT DOUBLE_BYTES(x) FROM u")
    assert sorted(result.rows, key=repr) == [(None,), (b"\x01\x02\x01\x02",)]


def test_aggregate_udf_skips_nulls_and_handles_empty(backend):
    backend.execute("CREATE TABLE agg (x INT)")
    backend.register_aggregate_udf(
        "BIGPROD",
        initial=lambda: None,
        step=lambda state, value: (1 if state is None else state) * (value + 2**64),
        finalize=lambda state: state,
    )
    # Empty table: finalize on the initial state, NULL out.
    assert backend.execute("SELECT BIGPROD(x) FROM agg").scalar() is None
    backend.execute("INSERT INTO agg (x) VALUES (1), (NULL), (2)")
    value = backend.execute("SELECT BIGPROD(x) FROM agg").scalar()
    assert value == (1 + 2**64) * (2 + 2**64)  # NULL skipped, bigint decoded


# ---------------------------------------------------------------------------
# transactions
# ---------------------------------------------------------------------------
def test_transaction_rollback_and_commit(backend):
    backend.execute("CREATE TABLE t (id INT)")
    assert not backend.transactions.in_transaction
    backend.execute("BEGIN")
    assert backend.transactions.in_transaction
    backend.execute("INSERT INTO t (id) VALUES (1)")
    backend.execute("ROLLBACK")
    assert not backend.transactions.in_transaction
    assert backend.execute("SELECT COUNT(*) FROM t").scalar() == 0
    backend.execute("BEGIN")
    backend.execute("INSERT INTO t (id) VALUES (2)")
    backend.execute("COMMIT")
    assert backend.execute("SELECT COUNT(*) FROM t").scalar() == 1
    # COMMIT/ROLLBACK outside a transaction are tolerated (stock-MySQL-like).
    backend.execute("COMMIT")
    backend.execute("ROLLBACK")
    # Nested BEGIN is rejected exactly like the in-memory engine.
    backend.execute("BEGIN")
    with pytest.raises(SQLExecutionError):
        backend.execute("BEGIN")
    backend.execute("ROLLBACK")


# ---------------------------------------------------------------------------
# wiring: resolve_backend / connect / encrypted proxy
# ---------------------------------------------------------------------------
def test_backend_resolution():
    assert isinstance(create_backend("sqlite"), SQLiteBackend)
    assert isinstance(resolve_backend("sqlite"), SQLiteBackend)
    assert isinstance(resolve_backend("sqlite3"), SQLiteBackend)
    with pytest.raises(ValueError):
        create_backend("postgres")


def test_encrypted_connection_over_sqlite(paillier_keypair):
    conn = connect(backend="sqlite", paillier=paillier_keypair)
    cur = conn.cursor()
    cur.execute("CREATE TABLE emp (id INT, name VARCHAR(30), salary INT)")
    cur.executemany(
        "INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)",
        [(1, "alice", 70000), (2, "bob", 50000), (3, "carol", None)],
    )
    # The DBMS only ever sees anonymised tables and ciphertext columns.
    assert not conn.backend.has_table("emp")
    anon_tables = conn.backend.table_names()
    assert len(anon_tables) == 1 and anon_tables[0] != "emp"
    cur.execute("SELECT name FROM emp WHERE salary > ?", (60000,))
    assert cur.fetchall() == [("alice",)]
    cur.execute("SELECT COUNT(*), SUM(salary) FROM emp")
    assert cur.fetchall() == [(3, 120000)]
    cur.execute("UPDATE emp SET salary = salary + 1000 WHERE id = 2")
    cur.execute("SELECT SUM(salary) FROM emp")
    assert cur.fetchall() == [(121000,)]
    with conn:
        cur.execute("DELETE FROM emp WHERE id = 1")
    cur.execute("SELECT COUNT(*) FROM emp")
    assert cur.fetchall() == [(2,)]
    conn.close()


def test_plain_connection_over_sqlite_name():
    conn = connect(encrypted=False, backend="sqlite")
    conn.execute("CREATE TABLE t (id INT, b BLOB)")
    conn.execute("INSERT INTO t (id, b) VALUES (1, X'00ff')")
    cur = conn.execute("SELECT id, b FROM t")
    assert cur.fetchall() == [(1, b"\x00\xff")]


def test_connection_close_releases_owned_sqlite_backend(paillier_keypair):
    """connect(backend="sqlite") owns its backend; close() releases it."""
    import sqlite3

    conn = connect(backend="sqlite", paillier=paillier_keypair)
    handle = conn.backend.connection
    conn.close()
    with pytest.raises(sqlite3.ProgrammingError):
        handle.execute("SELECT 1")
    # A caller-provided backend stays open after the connection closes.
    own = SQLiteBackend()
    conn = connect(encrypted=False, backend=own)
    conn.close()
    own.execute("CREATE TABLE still_open (id INT)")
    assert own.has_table("still_open")
    own.close()


def test_like_case_folds_unicode_like_the_engine(backend):
    """SQLite's built-in LIKE folds ASCII only; the adapter overrides it.

    The in-memory engine compiles LIKE with re.IGNORECASE (full Unicode
    folding, like MySQL ci collations), so 'MÜNCHEN' must match
    '%münchen%' on both backends or the plaintext lanes of the
    conformance oracle would disagree on non-ASCII text.
    """
    backend.execute("CREATE TABLE t (s TEXT)")
    backend.execute(
        ast.Insert("t", ["s"], [[ast.Literal("MÜNCHEN")], [ast.Literal("berlin")],
                                [ast.Literal(None)]])
    )
    result = backend.execute("SELECT s FROM t WHERE s LIKE '%münchen%'")
    assert result.rows == [("MÜNCHEN",)]
    result = backend.execute("SELECT s FROM t WHERE s NOT LIKE '%MÜNCHEN%'")
    assert result.rows == [("berlin",)]  # NULL LIKE is NULL, row filtered

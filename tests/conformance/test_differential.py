"""Quick-mode differential conformance: the §3/§8 transparency guarantee.

One seeded stream of generated statements (schema DDL, multi-row and
parameterized INSERTs, predicate-rich SELECTs, joins, aggregates, HOM
increments, transactions with ROLLBACK) replays over seven lanes --
plaintext in-memory, plaintext SQLite, encrypted proxy over each backend
(HOM slot packing on, the default), the encrypted proxy with a two-process
crypto worker pool (``workers=2``), ``enc-packed-off``: the same proxy
with packing disabled so a packed-pipeline divergence bisects against the
scalar-HOM path, and ``enc-remote``: the same encrypted proxy behind a
real loopback :mod:`repro.server` (TCP, ECDH handshake, AEAD frames,
chunked FETCH) -- and every decrypted result must agree.  The parallel,
packed-off and remote lanes must also refuse exactly the statements the
serial encrypted lanes refuse: process-pool offload, ciphertext layout and
the wire protocol may never change behaviour, only throughput, storage and
deployment shape.  A divergence fails the test with an auto-minimized
reproducer and the seed to replay it.

``CONFORMANCE_STATEMENTS`` scales the stream (CI quick mode runs the
default; nightly-style runs can crank it up).
"""

from __future__ import annotations

import os

import pytest

from repro.crypto.keys import MasterKey
from repro.testing import DifferentialRunner, StatementGenerator, default_lane_factory

#: Body statements per stream; schema DDL and closing audits come on top, so
#: the acceptance floor of >=500 executed statements per backend pair holds.
QUICK_STATEMENTS = int(os.environ.get("CONFORMANCE_STATEMENTS", "520"))


@pytest.fixture(scope="module")
def runner(paillier_keypair) -> DifferentialRunner:
    factory = default_lane_factory(
        parallel_workers=2,
        remote=True,
        remote_fetch_chunk=64,
        packed_off=True,
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("conformance-harness"),
        hom_precompute=8,
    )
    return DifferentialRunner(factory)


def test_parallel_lane_present(runner):
    """The fifth (workers=2) lane is part of every conformance replay."""
    lanes = runner.lane_factory()
    try:
        assert "enc-parallel" in lanes
        proxy = lanes["enc-parallel"].proxy
        assert proxy.pool is not None and proxy.parallelism.workers == 2
    finally:
        for conn in lanes.values():
            conn.close()


def test_remote_lane_present(runner):
    """The sixth lane really is remote: a socket client, not an in-process proxy."""
    lanes = runner.lane_factory()
    try:
        assert "enc-remote" in lanes
        client = lanes["enc-remote"].proxy
        assert getattr(client, "is_remote", False)
        # Small chunks force the multi-frame FETCH path through the stream.
        assert client.fetch_chunk == 64
    finally:
        for conn in lanes.values():
            conn.close()


def test_packed_off_lane_present(runner):
    """The packing-bisection lane runs scalar HOM; the others run packed."""
    lanes = runner.lane_factory()
    try:
        assert lanes["enc-packed-off"].proxy.hom_packing is None
        assert lanes["enc-memory"].proxy.hom_packing is not None
    finally:
        for conn in lanes.values():
            conn.close()


def test_sum_heavy_tiny_headroom_stream(paillier_keypair, repro_seed):
    """SUM-dominated streams against a 4-row chunk budget (slot headroom).

    ``headroom_bits=2`` closes the packed-SUM running product every 4 rows,
    so aggregates over the seeded tables constantly emit multi-chunk
    partial-sum blobs and read them back -- the overflow machinery a
    production-sized headroom (2^16 rows) would never hit under test loads.
    """
    from repro.crypto.paillier import PackingConfig

    factory = default_lane_factory(
        packed_off=True,
        paillier=paillier_keypair,
        master_key=MasterKey.from_passphrase("conformance-headroom"),
        hom_precompute=8,
        hom_packing=PackingConfig(value_bits=32, headroom_bits=2),
    )
    generator = StatementGenerator(seed=repro_seed, tables=2, sum_heavy=True)
    stream = generator.generate_stream(max(QUICK_STATEMENTS // 4, 60))
    report = DifferentialRunner(factory).run_with_shrinking(stream, seed=repro_seed)
    assert report.ok, report.describe()
    assert report.selects_compared >= len(stream) // 6


def test_differential_conformance_quick_mode(runner, repro_seed):
    generator = StatementGenerator(seed=repro_seed, tables=3)
    stream = generator.generate_stream(QUICK_STATEMENTS)
    report = runner.run_with_shrinking(stream, seed=repro_seed)
    assert report.ok, report.describe()
    # Floors scale with the knob: the default (520) satisfies the CI
    # acceptance criterion of >=500 statements per backend pair, while
    # smaller local runs still assert full-stream execution.
    assert report.statements_executed >= QUICK_STATEMENTS
    # The stream must actually exercise the comparison machinery.
    assert report.selects_compared >= QUICK_STATEMENTS // 5


def test_transaction_rollback_stream(runner, repro_seed):
    """A hand-written stream hammering BEGIN/ROLLBACK onion snapshots."""
    from repro.testing.generator import GeneratedStatement as S

    stream = [
        S("CREATE TABLE acct (id INT, balance INT, owner VARCHAR(20))", kind="ddl"),
        S("INSERT INTO acct (id, balance, owner) VALUES (1, 100, 'alpha'), "
          "(2, 200, 'bravo'), (3, NULL, NULL)"),
        S("BEGIN", kind="txn"),
        S("UPDATE acct SET balance = balance + 50 WHERE id = 1"),
        S("DELETE FROM acct WHERE id = 2"),
        S("INSERT INTO acct (id, balance, owner) VALUES (4, 400, 'delta')"),
        S("SELECT * FROM acct ORDER BY id ASC", kind="select", ordered=True),
        S("ROLLBACK", kind="txn"),
        S("SELECT * FROM acct ORDER BY id ASC", kind="select", ordered=True),
        S("SELECT COUNT(*), SUM(balance) FROM acct", kind="select"),
        S("BEGIN", kind="txn"),
        S("UPDATE acct SET owner = 'echo' WHERE balance >= 200"),
        S("COMMIT", kind="txn"),
        S("SELECT id, owner FROM acct ORDER BY id ASC", kind="select", ordered=True),
    ]
    report = runner.run(stream)
    assert report.ok, report.describe()


def test_seeded_streams_are_reproducible(repro_seed):
    first = StatementGenerator(seed=repro_seed).generate_stream(40)
    second = StatementGenerator(seed=repro_seed).generate_stream(40)
    assert [s.describe() for s in first] == [s.describe() for s in second]
    different = StatementGenerator(seed=repro_seed + 1).generate_stream(40)
    assert [s.describe() for s in first] != [s.describe() for s in different]


def test_proxy_may_refuse_but_never_lies(runner):
    """A stale-onion SELECT is refused by the proxy, not answered wrongly."""
    from repro.testing.generator import GeneratedStatement as S

    stream = [
        S("CREATE TABLE s (id INT, v INT)", kind="ddl"),
        S("INSERT INTO s (id, v) VALUES (1, 10), (2, 20)"),
        S("UPDATE s SET v = v + 5"),
        # Equality over the now-stale Eq onion: plaintext lanes answer,
        # encrypted lanes must refuse (not return pre-increment matches).
        S("SELECT id FROM s WHERE v = 15", kind="select", may_be_unsupported=True),
        # SUM reads the Add onion and must remain exact.
        S("SELECT SUM(v) FROM s", kind="select"),
    ]
    report = runner.run(stream)
    assert report.ok, report.describe()
    assert report.refused_by_proxy == 1

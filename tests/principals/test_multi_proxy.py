"""Multi-principal proxy: phpBB private messages and the HotCRP policy."""

import pytest

from repro.errors import AccessDeniedError, UnsupportedQueryError
from repro.workloads.hotcrp import HotCRPApplication

PRIVMSG_SCHEMA = """
PRINCTYPE physical_user EXTERNAL;
PRINCTYPE user, msg;
CREATE TABLE privmsgs (
  msgid int,
  subject varchar(255) ENC_FOR (msgid msg),
  msgtext text ENC_FOR (msgid msg) );
CREATE TABLE privmsgs_to (
  msgid int, rcpt_id int, sender_id int,
  (sender_id user) SPEAKS_FOR (msgid msg),
  (rcpt_id user) SPEAKS_FOR (msgid msg) );
CREATE TABLE users (
  userid int, username varchar(255),
  (username physical_user) SPEAKS_FOR (userid user) );
"""


@pytest.fixture()
def forum(multi_proxy):
    proxy = multi_proxy
    proxy.load_schema(PRIVMSG_SCHEMA)
    proxy.login("alice", "alicepw")
    proxy.login("bob", "bobpw")
    proxy.execute("INSERT INTO users (userid, username) VALUES (1, 'alice'), (2, 'bob')")
    proxy.execute(
        "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES "
        "(5, 'hello', 'secret message for alice')"
    )
    proxy.execute("INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 2)")
    return proxy


def test_recipient_and_sender_can_read(forum):
    result = forum.execute("SELECT subject, msgtext FROM privmsgs WHERE msgid = 5")
    assert result.rows == [("hello", "secret message for alice")]


def test_data_encrypted_on_server(forum):
    anon_table = forum.inner.schema.table("privmsgs").anon_name
    for _, row in forum.db.table(anon_table).scan():
        for value in row.values():
            if isinstance(value, bytes):
                assert b"secret message" not in value


def test_logged_out_users_protected_after_compromise(forum):
    forum.logout("alice")
    forum.logout("bob")
    forum.end_session()
    report = forum.compromise_report("privmsgs", "msgtext")
    assert report == {"readable": 0, "total": 1}
    with pytest.raises(AccessDeniedError):
        forum.execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")


def test_logged_in_user_data_exposed_during_compromise(forum):
    forum.logout("bob")
    forum.end_session()
    # Alice is still logged in: her chain (and only hers) is available.
    report = forum.compromise_report("privmsgs", "msgtext")
    assert report == {"readable": 1, "total": 1}


def test_login_via_cryptdb_active_table(multi_proxy):
    proxy = multi_proxy
    proxy.load_schema(PRIVMSG_SCHEMA)
    proxy.execute("INSERT INTO cryptdb_active (username, password) VALUES ('carol', 'pw')")
    assert "carol" in proxy.logged_in
    proxy.execute("DELETE FROM cryptdb_active WHERE username = 'carol'")
    assert "carol" not in proxy.logged_in


def test_updating_enc_for_column_rejected(forum):
    with pytest.raises(UnsupportedQueryError):
        forum.execute("UPDATE privmsgs SET msgtext = 'new text' WHERE msgid = 5")


def test_non_annotated_columns_still_queryable(forum):
    assert forum.execute("SELECT rcpt_id FROM privmsgs_to WHERE msgid = 5").rows == [(1,)]


def test_hotcrp_conflict_policy(multi_proxy):
    """The Figure 6 policy: a conflicted PC chair cannot read reviewer identities."""
    app = HotCRPApplication(multi_proxy)
    app.install()
    app.add_pc_member(1, 'chair@conf.org', 'chairpw')
    app.add_pc_member(2, 'member@conf.org', 'memberpw')
    # Paper 10 is authored by the chair: declare the conflict, then review it.
    app.declare_conflict(10, 1)
    app.submit_paper(10, 'Encrypted Query Processing', 'onions all the way down')
    app.submit_review(100, 10, 2, 'strong accept, great systems work')
    proxy = multi_proxy
    # The non-conflicted member can read the review and reviewer identity.
    proxy.logout('chair@conf.org')
    proxy.end_session()
    result = proxy.execute("SELECT reviewerId, commentsToPC FROM PaperReview WHERE paperId = 10")
    assert result.rows == [(2, 'strong accept, great systems work')]
    # The conflicted chair (alone) cannot.
    proxy.logout('member@conf.org')
    proxy.login('chair@conf.org', 'chairpw')
    proxy.end_session()
    with pytest.raises(AccessDeniedError):
        proxy.execute("SELECT reviewerId FROM PaperReview WHERE paperId = 10")
    report = proxy.compromise_report("PaperReview", "reviewerId")
    assert report["readable"] == 0 and report["total"] == 1

"""The PRINCTYPE / ENC FOR / SPEAKS FOR annotation parser."""

import pytest

from repro.errors import PolicyError
from repro.principals.annotations import parse_annotated_schema
from repro.workloads.gradapply import GRADAPPLY_ANNOTATED_SCHEMA
from repro.workloads.hotcrp import HOTCRP_ANNOTATED_SCHEMA
from repro.workloads.phpbb import PHPBB_ANNOTATED_SCHEMA


def test_parse_phpbb_figure4_schema():
    schema = parse_annotated_schema(PHPBB_ANNOTATED_SCHEMA)
    assert schema.principal_types["physical_user"].external
    assert not schema.principal_types["msg"].external
    enc_columns = {(a.table, a.column) for a in schema.enc_for}
    assert ("privmsgs", "msgtext") in enc_columns and ("posts", "post_text") in enc_columns
    rules = schema.speaks_for_on("privmsgs_to")
    assert {r.subject for r in rules} == {"sender_id", "rcpt_id"}
    assert all(r.object_type == "msg" for r in rules)


def test_conditional_speaks_for_predicates():
    schema = parse_annotated_schema(PHPBB_ANNOTATED_SCHEMA)
    acl_rules = schema.speaks_for_on("aclgroups")
    predicates = {r.predicate for r in acl_rules}
    assert "optionid=20" in predicates and "optionid=14" in predicates


def test_hotcrp_external_table_reference_and_function_predicate():
    schema = parse_annotated_schema(HOTCRP_ANNOTATED_SCHEMA)
    review_rules = schema.speaks_for_on("PaperReview")
    assert len(review_rules) == 1
    rule = review_rules[0]
    assert rule.subject == "PCMember.contactId" and rule.subject_is_external_reference
    assert rule.predicate.startswith("NoConflict")


def test_clean_sql_has_no_annotations():
    schema = parse_annotated_schema(PHPBB_ANNOTATED_SCHEMA)
    for create in schema.create_statements:
        upper = create.upper()
        assert "ENC" not in upper.replace("ENCRYPT", "") or "ENC_FOR" not in upper
        assert "SPEAKS" not in upper
        assert "PRINCTYPE" not in upper


def test_annotation_counts_figure8_style():
    for text, min_total, min_unique in [
        (PHPBB_ANNOTATED_SCHEMA, 10, 8),
        (HOTCRP_ANNOTATED_SCHEMA, 6, 5),
        (GRADAPPLY_ANNOTATED_SCHEMA, 12, 9),
    ]:
        schema = parse_annotated_schema(text)
        assert schema.annotation_count >= min_total
        assert schema.unique_annotation_count >= min_unique
        assert schema.unique_annotation_count <= schema.annotation_count


def test_sensitive_fields_listed():
    schema = parse_annotated_schema(GRADAPPLY_ANNOTATED_SCHEMA)
    assert ("candidates", "gpa") in schema.sensitive_fields()
    assert ("letters", "letter_text") in schema.sensitive_fields()


def test_undeclared_principal_type_rejected():
    with pytest.raises(PolicyError):
        parse_annotated_schema(
            "CREATE TABLE t (a int, b int ENC_FOR (a ghost));"
        )


def test_accepts_spaces_in_keywords():
    schema = parse_annotated_schema(
        "PRINCTYPE u EXTERNAL;\nPRINCTYPE box;\n"
        "CREATE TABLE t (a int, secret text ENC FOR (a box), "
        "(a u) SPEAKS FOR (a box));"
    )
    assert len(schema.enc_for) == 1
    assert len(schema.speaks_for) == 1

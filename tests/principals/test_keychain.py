"""Key chaining: principals, delegation, revocation, offline delivery."""

import pytest

from repro.errors import AccessDeniedError
from repro.principals import pubkey
from repro.principals.keychain import KeyChain, Principal
from repro.sql.engine import Database


@pytest.fixture()
def chain():
    return KeyChain(Database())


def test_pubkey_kem_roundtrip_and_tamper_detection():
    pair = pubkey.KeyPair.generate()
    payload = b"principal key material"
    ciphertext = pubkey.encrypt(pair.public, payload)
    assert pubkey.decrypt(pair.private, ciphertext) == payload
    tampered = ciphertext[:-1] + bytes([ciphertext[-1] ^ 1])
    with pytest.raises(Exception):
        pubkey.decrypt(pair.private, tampered)


def test_symmetric_wrap_roundtrip():
    wrapped = pubkey.symmetric_wrap(b"k" * 16, b"payload")
    assert pubkey.symmetric_unwrap(b"k" * 16, wrapped) == b"payload"
    with pytest.raises(Exception):
        pubkey.symmetric_unwrap(b"j" * 16, wrapped)


def test_external_principal_login_logout(chain):
    chain.register_external("physical_user", "alice", "pw")
    chain.forget_session_keys()
    with pytest.raises(AccessDeniedError):
        chain.get_key(Principal("physical_user", "alice"))
    chain.login("physical_user", "alice", "pw")
    assert chain.get_key(Principal("physical_user", "alice"))
    chain.logout("physical_user", "alice")
    with pytest.raises(AccessDeniedError):
        chain.get_key(Principal("physical_user", "alice"))


def test_wrong_password_fails(chain):
    chain.register_external("physical_user", "alice", "pw")
    chain.forget_session_keys()
    with pytest.raises(Exception):
        chain.login("physical_user", "alice", "wrong")


def test_delegation_chain_across_levels(chain):
    """user -> group -> forum key chain, resolved only from a logged-in user."""
    chain.register_external("physical_user", "alice", "pw")
    alice = Principal("physical_user", "alice")
    user1 = Principal("user", "1")
    group = Principal("group", "g")
    forum = Principal("forum", "f")
    for principal in (user1, group, forum):
        chain.create_principal(principal)
    chain.delegate(alice, user1)
    chain.delegate(user1, group)
    chain.delegate(group, forum)
    forum_key = chain.get_key(forum)
    chain.forget_session_keys()
    with pytest.raises(AccessDeniedError):
        chain.get_key(forum)
    chain.login("physical_user", "alice", "pw")
    assert chain.get_key(forum) == forum_key


def test_delegation_to_offline_principal_uses_public_key(chain):
    """Bob sends a message to Alice while Alice is offline (§4.2)."""
    chain.register_external("physical_user", "alice", "alicepw")
    chain.register_external("physical_user", "bob", "bobpw")
    alice = Principal("physical_user", "alice")
    message = Principal("msg", "5")
    chain.forget_session_keys()
    # Only Bob is online; the message key must still become accessible to Alice.
    chain.login("physical_user", "bob", "bobpw")
    chain.create_principal(message)
    chain.delegate(alice, message)
    message_key = chain.get_key(message)
    chain.forget_session_keys()
    chain.login("physical_user", "alice", "alicepw")
    assert chain.get_key(message) == message_key


def test_revocation_removes_access(chain):
    chain.register_external("physical_user", "alice", "pw")
    alice = Principal("physical_user", "alice")
    doc = Principal("doc", "1")
    chain.create_principal(doc)
    chain.delegate(alice, doc)
    assert chain.revoke(alice, doc) == 1
    chain.forget_session_keys()
    chain.login("physical_user", "alice", "pw")
    assert not chain.can_access(doc)


def test_keys_stored_in_dbms_are_wrapped(chain):
    chain.register_external("physical_user", "alice", "pw")
    doc = Principal("doc", "1")
    chain.create_principal(doc)
    doc_key = chain.get_key(doc)
    chain.delegate(Principal("physical_user", "alice"), doc)
    for table in ("cryptdb_access_keys", "cryptdb_external_keys", "cryptdb_public_keys"):
        for _, row in chain.db.table(table).scan():
            for value in row.values():
                if isinstance(value, bytes):
                    assert doc_key not in value

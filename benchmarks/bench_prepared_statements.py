"""Prepared statements: the prepare/execute split the DB-API layer enables.

The paper's evaluation (§8.4, Figures 9-10) attributes most per-query proxy
latency to parsing + rewriting.  String-interpolated SQL -- what every
workload did before the DB-API redesign -- pays that cost on *every* call,
because each literal produces a distinct statement text.  A parameterized
statement has one shape: the proxy rewrites it once, caches the plan keyed
on normalized SQL, and each execution only encrypts the bound parameters.

This benchmark quantifies that split:

* prepare (parse + analyse + anonymise) vs execute (bind + server + decrypt)
  time for one SELECT shape;
* mean per-query latency of N unprepared (interpolated) SELECTs vs the same
  N executed through one prepared shape, asserting a measurable reduction;
* plan-cache hit/miss counters, asserting hits > 0 (the acceptance check
  that repeated shapes skip re-parse/re-rewrite).
"""

import time

import pytest

import repro

from conftest import print_table, record_bench

_ROWS = 40
_QUERIES = 60


@pytest.fixture(scope="module")
def loaded_conn(small_paillier):
    conn = repro.connect(paillier=small_paillier)
    cur = conn.cursor()
    cur.execute(
        "CREATE TABLE accounts (id int, owner varchar(40), balance int, region varchar(10))"
    )
    cur.executemany(
        "INSERT INTO accounts (id, owner, balance, region) VALUES (?, ?, ?, ?)",
        [
            (i, f"owner {i}", 1000 + 13 * i, f"region{i % 4}")
            for i in range(1, _ROWS + 1)
        ],
    )
    # Warm the onion levels so neither measured path pays adjustment UPDATEs.
    cur.execute("SELECT owner FROM accounts WHERE id = ? AND balance > ?", (1, 0))
    return conn


def test_prepared_vs_unprepared_select_latency(benchmark, loaded_conn):
    conn = loaded_conn
    proxy = conn.proxy
    stats = proxy.stats
    cur = conn.cursor()

    # Unprepared: distinct literals => distinct statement texts => the plan
    # cache cannot help; every query is parsed and rewritten from scratch.
    unprepared_start = time.perf_counter()
    for i in range(_QUERIES):
        key = 1 + (i % _ROWS)
        cur.execute(
            f"SELECT owner FROM accounts WHERE id = {key} AND balance > {100 + i}"
        )
    unprepared = (time.perf_counter() - unprepared_start) / _QUERIES

    # Prepared: one shape, rewritten once; executions only bind parameters.
    hits_before = stats.plan_cache_hits
    prepare_start = time.perf_counter()
    prepared = proxy.prepare("SELECT owner FROM accounts WHERE id = ? AND balance > ?")
    prepare_time = time.perf_counter() - prepare_start
    execute_start = time.perf_counter()
    for i in range(_QUERIES):
        proxy.execute_prepared(prepared, (1 + (i % _ROWS), 100 + i))
    prepared_mean = (time.perf_counter() - execute_start) / _QUERIES

    # The same shape through the cursor hits the plan cache.
    for i in range(5):
        cur.execute(
            "SELECT owner FROM accounts WHERE id = ? AND balance > ?", (1 + i, 0)
        )

    print_table("Prepared vs unprepared SELECT", [
        {"path": "unprepared (interpolated)", "per-query ms": round(unprepared * 1000, 3)},
        {"path": "prepared (bind only)", "per-query ms": round(prepared_mean * 1000, 3)},
        {"path": "one-time prepare", "per-query ms": round(prepare_time * 1000, 3)},
    ])
    print(f"Plan cache: {stats.plan_cache_hits} hits / {stats.plan_cache_misses} misses "
          f"/ {stats.plan_cache_invalidations} invalidations")
    summary = stats.query_type_summary()
    print_table("Per-statement-type latency", [
        {"statement": kind, "count": int(entry["count"]),
         "mean ms": round(entry["mean_ms"], 3)}
        for kind, entry in summary.items()
    ])

    record_bench("prepared_statements", {
        "unprepared_ms": round(unprepared * 1000, 4),
        "prepared_ms": round(prepared_mean * 1000, 4),
        "one_time_prepare_ms": round(prepare_time * 1000, 4),
        "speedup": round(unprepared / prepared_mean, 2),
    })
    # Acceptance: repeated execution of the same shape skipped re-rewriting...
    assert stats.plan_cache_hits > hits_before
    # ...and the prepared path is measurably faster per query than paying
    # parse + rewrite every time.
    assert prepared_mean < unprepared * 0.9

    benchmark(lambda: proxy.execute_prepared(prepared, (7, 150)))


def test_executemany_batches_one_rewrite(loaded_conn):
    """N-row executemany performs one rewrite, not N."""
    conn = loaded_conn
    stats = conn.proxy.stats
    rewrites_before = stats.queries_rewritten
    conn.executemany(
        "INSERT INTO accounts (id, owner, balance, region) VALUES (?, ?, ?, ?)",
        [(1000 + i, f"bulk {i}", 50 * i, "regionX") for i in range(20)],
    )
    rewrites = stats.queries_rewritten - rewrites_before
    print(f"executemany(20 rows): {rewrites} rewrite(s)")
    assert rewrites <= 1
    cur = conn.cursor()
    cur.execute("SELECT COUNT(*) FROM accounts WHERE id >= ?", (1000,))
    assert cur.fetchone()[0] == 20

"""Profile the crypto hot paths: top-N cumulative time per scheme.

The tentpole optimisations of the crypto layer (Jacobian ECC, T-table AES,
CRT Paillier) came out of exactly this kind of profile, so the harness is
kept in-tree: run it before (and after) any perf PR so the next optimisation
starts from data, not guesses.

Usage::

    python benchmarks/profile_hotpaths.py                 # all schemes
    python benchmarks/profile_hotpaths.py --scheme ecc    # one scheme
    python benchmarks/profile_hotpaths.py --top 20        # more rows
    python benchmarks/profile_hotpaths.py --scheme tpcc   # the full TPC-C mix
    python benchmarks/profile_hotpaths.py --scheme tpcc --workers 2

Each scheme runs a representative micro-workload under :mod:`cProfile` and
prints the top-N functions by cumulative time; ``tpcc`` drives the whole
proxy with the Figure-10 query mix instead, which is what end-to-end
throughput actually pays for.

``--workers N`` gives the tpcc proxy a crypto worker pool of N processes
(with an aggressive chunk threshold so the mix actually offloads): each
worker self-profiles and dumps its stats at exit, and the report aggregates
the parent profile with every child's, so hot-path attribution keeps
working when the crypto runs out-of-process.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

MASTER = b"profile-master!!"


def _workload_ecc() -> None:
    from repro.crypto.join_adj import JoinAdj, adjust, adjust_many

    a = JoinAdj.for_column(MASTER, "t1", "a")
    b = JoinAdj.for_column(MASTER, "t2", "b")
    values = [str(i).encode() for i in range(150)]
    hashes = [a.hash_value(value) for value in values[:50]]
    hashes += a.hash_values(values[50:])
    delta = a.delta_to(b)
    for ciphertext in hashes[:25]:
        adjust(ciphertext, delta)
    adjust_many(hashes, delta)


def _workload_aes() -> None:
    from repro.crypto.det import DET
    from repro.crypto.rnd import RND

    det = DET(b"0123456789abcdef")
    rnd = RND(b"fedcba9876543210")
    for i in range(300):
        value = (f"customer-record-{i}" * 3).encode()
        det.decrypt_bytes(det.encrypt_bytes(value))
        iv = i.to_bytes(16, "big")
        rnd.decrypt_bytes(rnd.encrypt_bytes(value, iv), iv)


def _workload_ope() -> None:
    from repro.crypto.ope import OPE

    ope = OPE(b"ope-key-16-bytes", plaintext_bits=32, ciphertext_bits=64)
    for i in range(120):
        ope.decrypt(ope.encrypt(i * 7919 % (1 << 32)))


def _workload_paillier() -> None:
    from repro.crypto.paillier import Paillier, PaillierKeyPair

    keypair = PaillierKeyPair.generate(512)
    keypair.precompute_randomness(60)
    hom = Paillier(keypair.public)
    total = hom.identity()
    for i in range(120):
        ciphertext = keypair.encrypt(i)
        total = hom.add(total, ciphertext)
        keypair.decrypt(ciphertext)
    keypair.decrypt(total)


def _workload_tpcc(workers: int = 0, profile_dir: str | None = None) -> None:
    import repro
    from repro.crypto.paillier import PaillierKeyPair
    from repro.parallel import ParallelConfig
    from repro.workloads.tpcc import TPCCWorkload

    scale = dict(warehouses=1, districts_per_warehouse=1,
                 customers_per_district=5, items=6, orders_per_district=5)
    connection = repro.connect(
        paillier=PaillierKeyPair.generate(512),
        parallelism=ParallelConfig(
            workers=workers, chunk_threshold=8, profile_dir=profile_dir
        ),
    )
    workload = TPCCWorkload(**scale)
    workload.load_into(connection)
    connection.proxy.train(workload.training_queries())
    cursor = connection.cursor()
    for sql, params in workload.mixed_query_params(96):
        cursor.execute(sql, params)
    # Graceful pool shutdown: each worker dumps its profile at exit.
    connection.close()


SCHEMES = {
    "ecc": _workload_ecc,
    "aes": _workload_aes,
    "ope": _workload_ope,
    "paillier": _workload_paillier,
    "tpcc": _workload_tpcc,
}


def profile_scheme(name: str, top: int, workers: int = 0) -> pstats.Stats:
    workload = SCHEMES[name]
    profile_dir = None
    if name == "tpcc" and workers:
        profile_dir = tempfile.mkdtemp(prefix="repro-hotpaths-")
        workload = lambda: _workload_tpcc(workers, profile_dir)  # noqa: E731
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    stats = pstats.Stats(profiler)
    worker_profiles = []
    if profile_dir:
        worker_profiles = sorted(Path(profile_dir).glob("worker-*.prof"))
        for dump in worker_profiles:
            stats.add(str(dump))
    title = f"{name}: top {top} by cumulative time"
    if profile_dir:
        title += f" (parent + {len(worker_profiles)} worker profiles aggregated)"
    print(f"\n=== {title} ===")
    stats.sort_stats("cumulative").print_stats(r"repro|hmac|hashlib", top)
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheme", choices=sorted(SCHEMES), default=None,
                        help="profile one scheme (default: all crypto schemes)")
    parser.add_argument("--top", type=int, default=12,
                        help="rows to print per scheme (default 12)")
    parser.add_argument("--workers", type=int, default=0,
                        help="crypto worker processes for the tpcc workload "
                             "(child profiles are aggregated into the report)")
    args = parser.parse_args(argv)
    schemes = [args.scheme] if args.scheme else ["ecc", "aes", "ope", "paillier"]
    if args.workers and "tpcc" not in schemes:
        parser.error("--workers applies to the proxy-level workload: "
                     "use --scheme tpcc")
    for name in schemes:
        profile_scheme(name, args.top, workers=args.workers)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

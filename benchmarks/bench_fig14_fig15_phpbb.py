"""Figures 14 and 15: phpBB throughput and per-request latency.

Figure 14 compares phpBB on MySQL, on MySQL behind a pass-through proxy, and
on CryptDB with the notably sensitive fields encrypted; the paper measures a
14.5% total throughput loss, roughly half of which is the proxy itself.
Figure 15 reports per-request latency for Login / Read post / Write post /
Read msg / Write msg, with CryptDB adding 6-20% per request.
"""

import time

import pytest

import repro
from repro.core.passthrough import PassthroughProxy
from repro.workloads.phpbb import PHPBB_SENSITIVE_FIELDS, PhpBBApplication, REQUEST_TYPES

from conftest import print_table

_USERS = 6
_FORUMS = 2
_PRELOAD = dict(messages=6, posts=6)
_REQUESTS = 20


def _make_app(target) -> PhpBBApplication:
    app = PhpBBApplication(target, users=_USERS, forums=_FORUMS)
    app.create_schema()
    app.load_initial_data(**_PRELOAD)
    return app


def _encrypted_app(paillier) -> PhpBBApplication:
    conn = repro.connect(paillier=paillier)
    app = PhpBBApplication(conn, users=_USERS, forums=_FORUMS)
    # Only the notably sensitive fields are encrypted (Figure 14's setup):
    # the proxy still intercepts everything, but non-sensitive columns are
    # stored in plaintext via the §3.5.2 annotation.
    from repro.sql.parser import parse_sql
    from repro.workloads.phpbb import PHPBB_PLAIN_SCHEMA

    for statement in PHPBB_PLAIN_SCHEMA:
        parsed = parse_sql(statement)
        sensitive = set(PHPBB_SENSITIVE_FIELDS.get(parsed.table, ()))
        plaintext = [c.name for c in parsed.columns if c.name not in sensitive]
        conn.proxy.create_table(
            parsed, plaintext_columns=plaintext, sensitive_columns=sensitive
        )
    app.load_initial_data(**_PRELOAD)
    return app


@pytest.fixture(scope="module")
def apps(small_paillier):
    return {
        "MySQL": _make_app(repro.connect(encrypted=False)),
        "MySQL+proxy": _make_app(repro.Connection(PassthroughProxy())),
        "CryptDB": _encrypted_app(small_paillier),
    }


def _throughput(app: PhpBBApplication, requests: int) -> float:
    start = time.perf_counter()
    app.mixed_requests(requests)
    return requests / (time.perf_counter() - start)


def test_fig14_phpbb_throughput(benchmark, apps):
    baseline = _throughput(apps["MySQL"], _REQUESTS)
    with_proxy = _throughput(apps["MySQL+proxy"], _REQUESTS)
    cryptdb = _throughput(apps["CryptDB"], _REQUESTS)
    rows = [
        {"configuration": "MySQL", "req/s": round(baseline, 1), "loss %": 0.0, "paper loss %": 0.0},
        {"configuration": "MySQL+proxy", "req/s": round(with_proxy, 1),
         "loss %": round(100 * (1 - with_proxy / baseline), 1), "paper loss %": 8.3},
        {"configuration": "CryptDB", "req/s": round(cryptdb, 1),
         "loss %": round(100 * (1 - cryptdb / baseline), 1), "paper loss %": 14.5},
    ]
    print_table("Figure 14: phpBB throughput", rows)
    stats = apps["CryptDB"].target.proxy.stats
    print(f"CryptDB plan cache: {stats.plan_cache_hits} hits / "
          f"{stats.plan_cache_misses} misses "
          f"(each request kind is one prepared shape)")
    # Shape: MySQL >= MySQL+proxy >= CryptDB.  The paper's 8.3% / 14.5% losses
    # rely on MySQL's C engine and CryptDB's C++ crypto being comparable; with
    # a pure-Python engine and pure-Python crypto the absolute gap is larger,
    # so only the ordering is asserted (EXPERIMENTS.md records both numbers).
    assert baseline >= with_proxy * 0.9
    assert with_proxy >= cryptdb * 0.5
    assert cryptdb > 0
    benchmark(lambda: apps["CryptDB"].request("R post"))


def test_fig15_phpbb_request_latency(benchmark, apps):
    rows = []
    paper_mysql = {"Login": 60, "R post": 50, "W post": 133, "R msg": 61, "W msg": 237}
    paper_cryptdb = {"Login": 67, "R post": 60, "W post": 151, "R msg": 73, "W msg": 251}
    for request_type in REQUEST_TYPES:
        timings = {}
        for config in ("MySQL", "CryptDB"):
            app = apps[config]
            start = time.perf_counter()
            for _ in range(5):
                app.request(request_type)
            timings[config] = (time.perf_counter() - start) / 5 * 1000
        rows.append({
            "request": request_type,
            "MySQL ms": round(timings["MySQL"], 2),
            "CryptDB ms": round(timings["CryptDB"], 2),
            "overhead %": round(100 * (timings["CryptDB"] / timings["MySQL"] - 1), 1),
            "paper MySQL ms": paper_mysql[request_type],
            "paper CryptDB ms": paper_cryptdb[request_type],
        })
    print_table("Figure 15: phpBB per-request latency", rows)
    # Shape: CryptDB adds overhead to every request type but never an order
    # of magnitude (the paper reports 6-20%; pure-Python crypto costs more).
    for row in rows:
        assert row["CryptDB ms"] >= row["MySQL ms"] * 0.8
    benchmark(lambda: apps["CryptDB"].request("Login"))

"""Server concurrency: many encrypted wire sessions on one shared proxy.

The paper's deployment (§8.1) places one CryptDB proxy between *many*
application servers and the DBMS.  This benchmark measures that topology as
built by :mod:`repro.server`: N client connections -- each a real TCP socket
with its own ECDH handshake and AEAD channel -- fire point SELECTs at one
loopback server, and we record aggregate throughput plus per-query p50/p99
latency as the connection count scales.

On a single-CPU host the shared proxy serializes statement execution, so
aggregate q/s stays roughly flat while tail latency grows with the queue
depth -- the *shape* asserted here is "no collapse and nothing dropped",
not linear scale-out.

The second test exercises the operational contract that matters for
deployments: a graceful drain under load finishes and flushes every
in-flight statement (``dropped_inflight == 0``), refuses new ones, and
leaves the process cleanly stoppable.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from repro.api import exceptions
from repro.api.connection import connect
from repro.crypto.keys import MasterKey
from repro.server.loopback import LoopbackServer

from conftest import BENCH_QUICK, print_table, record_bench, wait_until

#: Connection-count ladder; the 32-way rung is the acceptance criterion and
#: runs in both modes.
_SCALES = [1, 8, 32] if BENCH_QUICK else [1, 4, 8, 16, 32]
_QUERIES_PER_CONN = 8 if BENCH_QUICK else 25
_ROWS = 64
_DRAIN_BATCH = 200 if BENCH_QUICK else 400


@pytest.fixture(scope="module")
def server(small_paillier):
    instance = LoopbackServer(
        paillier=small_paillier,
        master_key=MasterKey.from_passphrase("bench-server"),
        hom_precompute=8,
    )
    seed = connect(url=instance.url)
    cur = seed.cursor()
    cur.execute("CREATE TABLE accts (id int, owner varchar(40), balance int)")
    cur.executemany(
        "INSERT INTO accts (id, owner, balance) VALUES (?, ?, ?)",
        [(i, f"owner {i}", 1000 + 13 * i) for i in range(1, _ROWS + 1)],
    )
    # Warm onion levels + the plan cache so every timed query takes the
    # steady-state path.
    cur.execute("SELECT owner FROM accts WHERE id = ? AND balance > ?", (1, 0))
    seed.close()
    yield instance
    instance.stop()


def _run_scale(url: str, connections: int, queries: int):
    """`connections` threads, each with its own wire session, timed jointly."""
    clients = [connect(url=url) for _ in range(connections)]
    latencies: list[list[float]] = [[] for _ in range(connections)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(connections + 1)

    def worker(index: int) -> None:
        cur = clients[index].cursor()
        lane = latencies[index]
        try:
            barrier.wait(timeout=60)
            for q in range(queries):
                key = 1 + (index * queries + q) % _ROWS
                begin = time.perf_counter()
                cur.execute(
                    "SELECT owner FROM accts WHERE id = ? AND balance > ?",
                    (key, 0),
                )
                rows = cur.fetchall()
                lane.append(time.perf_counter() - begin)
                assert rows == [(f"owner {key}",)]
        except BaseException as exc:  # surfaced by the main thread
            errors.append(exc)
            raise

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(connections)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - start
    for client in clients:
        client.close()
    assert not errors, errors[0]
    flat = sorted(lat for lane in latencies for lat in lane)
    assert len(flat) == connections * queries  # nothing lost, nothing retried
    return {
        "connections": connections,
        "queries": connections * queries,
        "q/s": round(len(flat) / elapsed, 1),
        "p50_ms": round(statistics.median(flat) * 1000, 2),
        "p99_ms": round(flat[max(0, int(len(flat) * 0.99) - 1)] * 1000, 2),
    }


def test_concurrent_connection_scaling(server):
    rows = [_run_scale(server.url, scale, _QUERIES_PER_CONN) for scale in _SCALES]
    print_table("Wire-protocol concurrency (one shared proxy)", rows)

    stats = server.stats
    print(
        f"server: {stats['connections_accepted']} connections accepted, "
        f"{stats['statements_served']} statements served, "
        f"{stats['sessions_dropped']} sessions dropped, "
        f"{stats['dropped_inflight']} dropped in flight"
    )
    record_bench("server_concurrency", {
        "rows": rows,
        "peak_connections": max(_SCALES),
        "queries_per_connection": _QUERIES_PER_CONN,
        "dropped_inflight": stats["dropped_inflight"],
    })

    # Acceptance: >=32 concurrent connections all served, nothing dropped.
    assert max(row["connections"] for row in rows) >= 32
    assert stats["dropped_inflight"] == 0
    assert stats["sessions_dropped"] == 0
    for row in rows:
        assert row["q/s"] > 0
        assert row["p50_ms"] <= row["p99_ms"]
    # One shared serial proxy: throughput must not collapse as sessions
    # multiply (queueing may cost some, an order of magnitude would be a bug).
    base, peak = rows[0]["q/s"], rows[-1]["q/s"]
    assert peak > base * 0.3, f"throughput collapsed: {base} -> {peak} q/s"


def test_disarmed_fault_layer_overhead(server):
    """The disarmed fault-injection layer must cost < 2% of query p50.

    Every injection site guards with ``if faults.INJECTOR is not None`` --
    when no plan is armed (the production state) that attribute load plus
    None test is the layer's entire cost.  We time the guard directly, scale
    it by a deliberately pessimistic sites-per-query multiplier, and bound
    it against the measured single-connection wire p50.
    """
    from repro import faults

    assert faults.INJECTOR is None, "benchmarks must run disarmed"
    row = _run_scale(server.url, 1, _QUERIES_PER_CONN * 4)
    p50_s = row["p50_ms"] / 1000.0

    checks = 200_000
    begin = time.perf_counter()
    for _ in range(checks):
        if faults.INJECTOR is not None:  # the exact guard every site runs
            raise AssertionError("armed mid-benchmark")
    per_check_s = (time.perf_counter() - begin) / checks

    # A wire statement crosses well under 64 sites (client send/recv, server
    # send/recv, admission, backend execute, scatter, refill); overcounting
    # only strengthens the bound.
    sites_per_query = 64
    overhead = per_check_s * sites_per_query / p50_s
    print(
        f"fault layer disarmed: {per_check_s * 1e9:.1f} ns/guard, "
        f"{sites_per_query} sites/query vs p50 {row['p50_ms']} ms "
        f"-> {overhead * 100:.4f}% overhead"
    )
    record_bench("fault_layer_overhead", {
        "guard_ns": round(per_check_s * 1e9, 2),
        "sites_per_query": sites_per_query,
        "wire_p50_ms": row["p50_ms"],
        "overhead_fraction": overhead,
    })
    assert overhead < 0.02, (
        f"disarmed fault layer costs {overhead * 100:.2f}% of p50"
    )


def test_graceful_drain_under_load(small_paillier):
    """SIGTERM semantics: in-flight statements finish, zero are dropped."""
    server = LoopbackServer(
        paillier=small_paillier,
        master_key=MasterKey.from_passphrase("bench-drain"),
        hom_precompute=8,
    )
    inflight_conn = connect(url=server.url)
    probe_conn = connect(url=server.url)
    refused = 0
    try:
        inflight_conn.execute("CREATE TABLE dr (id int, v int)")
        result = {}

        def big_batch():
            result["count"] = inflight_conn.cursor().executemany(
                "INSERT INTO dr (id, v) VALUES (?, ?)",
                [(i, i) for i in range(_DRAIN_BATCH)],
            ).rowcount

        worker = threading.Thread(target=big_batch)
        worker.start()
        wait_until(
            lambda: server.server._inflight > 0,
            message="the batch to reach the executor",
        )

        drainer = threading.Thread(target=server.drain)
        drainer.start()
        wait_until(
            lambda: server.server.draining,
            message="drain to start refusing new statements",
        )

        try:
            probe_conn.execute("INSERT INTO dr (id, v) VALUES (-1, -1)")
        except exceptions.OperationalError:
            refused = 1

        worker.join(timeout=300)
        drainer.join(timeout=300)
        stats = server.stats
        print(
            f"drain: batch of {result.get('count')} landed, "
            f"{stats['dropped_inflight']} dropped in flight, "
            f"{stats['statements_refused_draining']} refused while draining"
        )
        record_bench("server_drain", {
            "inflight_batch_rows": result.get("count", 0),
            "dropped_inflight": stats["dropped_inflight"],
            "refused_during_drain": stats["statements_refused_draining"],
        })
        assert result.get("count") == _DRAIN_BATCH
        assert stats["dropped_inflight"] == 0
        assert refused == 1
    finally:
        for conn in (inflight_conn, probe_conn):
            try:
                conn.close()
            except exceptions.Error:
                pass
        server.stop()

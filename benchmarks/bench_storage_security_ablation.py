"""§8.4.3 storage overhead, §8.3 security evaluation, §3.4 join ablation.

* Storage: CryptDB's onions + IVs + Paillier expansion grow the database
  (paper: 3.76x for fully-encrypted TPC-C, ~1.2x for phpBB where only
  sensitive fields are encrypted).
* Security: with no user logged in, a full compromise of server + proxy
  reveals none of the multi-principal data (phpBB private messages).
* Ablation: the number of JOIN-ADJ re-keyings is bounded by n(n-1)/2 and
  drops to zero once transitivity groups are established.
"""

import pytest

from repro.analysis.storage import storage_comparison
from repro.core.joins import JoinManager
from repro.workloads.tpcc import TPCCWorkload

from conftest import print_table

_TPCC_SCALE = dict(
    warehouses=1, districts_per_warehouse=1, customers_per_district=4,
    items=5, orders_per_district=3,
)


def test_storage_overhead_tpcc(benchmark, paillier_keypair):
    from repro.core.proxy import CryptDBProxy
    from repro.sql.engine import Database

    workload = TPCCWorkload(**_TPCC_SCALE)

    def build():
        return storage_comparison(
            workload.schema_statements(),
            workload.load_statements(),
            proxy_factory=lambda db: CryptDBProxy(db, paillier=paillier_keypair),
        )

    report = benchmark.pedantic(build, iterations=1, rounds=1)
    print_table(
        "Storage overhead (TPC-C, all columns encrypted)",
        [{
            "plain bytes": report.plain_bytes,
            "encrypted bytes": report.encrypted_bytes,
            "expansion (ours)": round(report.expansion, 2),
            "expansion (paper)": 3.76,
        }],
    )
    # Shape: clear super-unity expansion dominated by HOM/onion overhead.
    assert report.expansion > 2.0


def test_security_compromise_phpbb(benchmark, small_paillier):
    """§8.3: a full compromise reveals only logged-in users' data."""
    from repro.crypto.keys import MasterKey
    from repro.principals.multi_proxy import MultiPrincipalProxy
    from repro.sql.engine import Database
    from repro.workloads.phpbb import PHPBB_ANNOTATED_SCHEMA
    from repro.core.proxy import CryptDBProxy
    from repro.principals.keychain import KeyChain
    from repro.sql.functions import FunctionRegistry

    proxy = MultiPrincipalProxy.__new__(MultiPrincipalProxy)
    proxy.db = Database()
    proxy.inner = CryptDBProxy(
        proxy.db, master_key=MasterKey.from_passphrase("bench-mp"), paillier=small_paillier
    )
    proxy.keychain = KeyChain(proxy.db)
    proxy.schema = None
    proxy.logged_in = {}
    proxy._predicates = {}
    proxy._predicate_functions = FunctionRegistry()
    proxy.lines_of_code_changed = 0
    proxy.load_schema(PHPBB_ANNOTATED_SCHEMA)

    users = 4
    for user_id in range(1, users + 1):
        proxy.login(f"user{user_id}", f"pw{user_id}")
        proxy.execute(
            f"INSERT INTO users (userid, username, user_password) VALUES "
            f"({user_id}, 'user{user_id}', 'pw{user_id}')"
        )
    for msg_id in range(1, users + 1):
        sender, recipient = msg_id, msg_id % users + 1
        proxy.execute(
            "INSERT INTO privmsgs (msgid, author_id, created, subject, msgtext) VALUES "
            f"({msg_id}, {sender}, '2011-10-10', 'subj {msg_id}', 'secret body {msg_id}')"
        )
        proxy.execute(
            "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES "
            f"({msg_id}, {recipient}, {sender})"
        )

    # Everyone logs out; the attacker compromises server + proxy afterwards.
    for user_id in range(1, users + 1):
        proxy.logout(f"user{user_id}")
    proxy.end_session()
    nobody = proxy.compromise_report("privmsgs", "msgtext")
    # One user logs back in: only messages reachable from that user leak.
    proxy.login("user1", "pw1")
    one_user = proxy.compromise_report("privmsgs", "msgtext")
    print_table(
        "Security: messages decryptable after full compromise",
        [
            {"logged-in users": 0, "readable": nobody["readable"], "total": nobody["total"]},
            {"logged-in users": 1, "readable": one_user["readable"], "total": one_user["total"]},
        ],
    )
    assert nobody["readable"] == 0
    assert 0 < one_user["readable"] < one_user["total"]
    benchmark(lambda: proxy.compromise_report("privmsgs", "msgtext"))


def test_join_adjustment_ablation(benchmark):
    def run(columns: int) -> int:
        manager = JoinManager(b"ablation-master")
        names = [("t", f"c{i}") for i in range(columns)]
        for name in names:
            manager.register_column(*name)
        for left in names:
            for right in names:
                if left < right:
                    manager.ensure_joinable(left, right)
        return manager.adjustments_performed

    rows = []
    for n in (2, 4, 8):
        adjustments = run(n)
        rows.append({
            "columns": n,
            "adjustments": adjustments,
            "paper bound n(n-1)/2": n * (n - 1) // 2,
        })
        assert adjustments <= n * (n - 1) // 2
    print_table("Ablation: JOIN-ADJ re-keyings vs the paper's bound", rows)
    benchmark(run, 6)

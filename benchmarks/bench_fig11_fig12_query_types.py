"""Figures 11 and 12: per-query-type throughput and latency for TPC-C.

Figure 11 compares MySQL, CryptDB and the strawman for each query type; the
paper's shape is (a) CryptDB within ~2x of MySQL for most types, with the
largest penalty on SUM and increment UPDATEs (HOM at the server), and (b) the
strawman far slower than CryptDB on selective queries because RND destroys
the use of indexes.  Figure 12 splits proxy vs server latency and shows the
ciphertext pre-computation/caching optimisation ("Proxy" vs "Proxy*") hiding
most of the OPE/HOM encryption cost.

All systems are driven through the DB-API layer; CryptDB additionally runs
parameterized, so per-type latency includes plan-cache effects exactly as an
application using prepared statements would see them.
"""

import time

import pytest

import repro
from repro.core.strawman import StrawmanProxy
from repro.workloads.tpcc import QUERY_TYPES, TPCCWorkload

from conftest import print_table

_SCALE = dict(
    warehouses=1, districts_per_warehouse=1, customers_per_district=5,
    items=6, orders_per_district=5,
)
_QUERIES_PER_TYPE = 6


def _workload() -> TPCCWorkload:
    return TPCCWorkload(**_SCALE)


def _run_type(connection, workload, query_type, count=_QUERIES_PER_TYPE) -> float:
    cursor = connection.cursor()
    query_params = workload.query_params_of_type(query_type, count)
    start = time.perf_counter()
    for sql, params in query_params:
        cursor.execute(sql, params)
    return (time.perf_counter() - start) / count


@pytest.fixture(scope="module")
def systems(small_paillier):
    plain = repro.connect(encrypted=False)
    _workload().load_into(plain)

    cryptdb = repro.connect(paillier=small_paillier)
    _workload().load_into(cryptdb)
    cryptdb.proxy.train(_workload().training_queries())

    strawman = repro.Connection(StrawmanProxy())
    _workload().load_into(strawman.target)
    return plain, cryptdb, strawman


def test_fig11_throughput_by_query_type(benchmark, systems):
    plain, cryptdb, strawman = systems
    strawman_types = {"Equality", "Range", "Delete", "Insert", "Upd. set"}
    rows = []
    for query_type in QUERY_TYPES:
        mysql_latency = _run_type(plain, _workload(), query_type)
        cryptdb_latency = _run_type(cryptdb, _workload(), query_type)
        row = {
            "query type": query_type,
            "MySQL q/s": round(1.0 / mysql_latency),
            "CryptDB q/s": round(1.0 / cryptdb_latency),
            "slowdown": round(cryptdb_latency / mysql_latency, 2),
        }
        if query_type in strawman_types:
            strawman_latency = _run_type(strawman, _workload(), query_type)
            row["Strawman q/s"] = round(1.0 / strawman_latency)
        else:
            row["Strawman q/s"] = "n/a"
        rows.append(row)
    print_table("Figure 11: TPC-C throughput by query type", rows)

    slowdowns = {r["query type"]: r["slowdown"] for r in rows}
    # Shape: HOM-heavy operations carry the largest penalty (paper: 2.0x for
    # SUM, 1.6x for increment UPDATEs), and every type stays within a modest
    # constant factor of plain execution.
    assert slowdowns["Sum"] >= 1.0
    assert max(slowdowns.values()) == pytest.approx(
        max(slowdowns["Sum"], slowdowns["Upd. inc"], slowdowns["Insert"]), rel=1.0
    )
    cursor = cryptdb.cursor()
    benchmark(lambda: cursor.execute(*_workload().query_params("Equality")))


def test_fig11_strawman_loses_to_cryptdb_on_selective_queries(benchmark, systems):
    """The strawman's RND-everything design makes the *server* do per-row crypto.

    The paper's Figure 11 point is that CryptDB beats the strawman because the
    DBMS indexes/operators work directly on DET/OPE ciphertexts, whereas the
    strawman must invoke a decryption UDF on every row of every referenced
    column.  At our tiny benchmark scale the proxy's fixed cost dominates
    end-to-end latency, so the assertion targets the server-side component:
    the strawman's per-query server work exceeds both plain MySQL's and
    CryptDB's server work for the same selective query.
    """
    plain, cryptdb, strawman = systems
    workload = _workload()

    plain_latency = _run_type(plain, workload, "Equality")
    strawman_latency = _run_type(strawman, workload, "Equality")
    proxy_stats = cryptdb.proxy.stats
    before_server = proxy_stats.server_time_seconds
    _run_type(cryptdb, workload, "Equality")
    cryptdb_server_latency = (proxy_stats.server_time_seconds - before_server) / _QUERIES_PER_TYPE

    # Per-row UDF decryption makes the strawman's server far slower than plain
    # MySQL on the same data...
    assert strawman_latency > plain_latency * 2
    # ...and slower than CryptDB's server-side share, which runs plain SQL
    # operators over DET ciphertexts.
    assert strawman_latency > cryptdb_server_latency
    cursor = strawman.cursor()
    benchmark(lambda: cursor.execute(*workload.query_params("Equality")))


def test_fig12_proxy_vs_server_latency(benchmark, systems, small_paillier):
    _, cryptdb, _ = systems
    proxy = cryptdb.proxy
    rows = []
    for query_type in QUERY_TYPES:
        before_proxy = proxy.stats.proxy_time_seconds
        before_server = proxy.stats.server_time_seconds
        cursor = cryptdb.cursor()
        query_params = _workload().query_params_of_type(query_type, _QUERIES_PER_TYPE)
        for sql, params in query_params:
            cursor.execute(sql, params)
        rows.append({
            "query type": query_type,
            "proxy ms": round((proxy.stats.proxy_time_seconds - before_proxy) * 1000 / len(query_params), 3),
            "server ms": round((proxy.stats.server_time_seconds - before_server) * 1000 / len(query_params), 3),
        })
    print_table("Figure 12: per-query proxy and server latency (with caching)", rows)

    # Per-statement-type wall times recorded by the proxy across the whole
    # module (SELECT/INSERT/UPDATE/DELETE), for EXPERIMENTS.md.
    summary_rows = [
        {"statement": kind, "count": int(entry["count"]),
         "mean ms": round(entry["mean_ms"], 3)}
        for kind, entry in proxy.stats.query_type_summary().items()
    ]
    print_table("Per-statement-type latency (proxy stats)", summary_rows)

    # Proxy* ablation: disable the ciphertext cache / HOM pre-computation and
    # observe the OPE/HOM query types getting slower at the proxy.
    no_cache = repro.connect(
        paillier=small_paillier, use_ciphertext_cache=False, hom_precompute=0
    )
    workload = _workload()
    workload.load_into(no_cache)
    no_cache.proxy.train(workload.training_queries())

    def proxy_time(connection, query_type):
        stats = connection.proxy.stats
        before = stats.proxy_time_seconds
        cursor = connection.cursor()
        for sql, params in _workload().query_params_of_type(query_type, 4):
            cursor.execute(sql, params)
        return (stats.proxy_time_seconds - before) / 4

    cached_range = proxy_time(cryptdb, "Range")
    uncached_range = proxy_time(no_cache, "Range")
    print(f"Range proxy latency: cached={cached_range*1000:.2f} ms, "
          f"uncached={uncached_range*1000:.2f} ms")
    # The OPE constant cache must help repeated range constants (Proxy vs
    # Proxy*).  Proxy time also includes parsing and result decryption, which
    # the cache does not touch, so allow measurement noise around equality but
    # verify the mechanism itself: the cached proxy accumulated OPE ciphertext
    # cache entries while the ablated proxy could not.
    assert uncached_range >= cached_range * 0.8
    cached_entries = sum(
        ope.cache_size for ope in proxy.encryptor._ope.values()
    )
    uncached_entries = sum(
        ope.cache_size for ope in no_cache.proxy.encryptor._ope.values()
    )
    print(f"OPE cache entries: cached proxy={cached_entries}, Proxy*={uncached_entries}")
    assert cached_entries > 0 and uncached_entries == 0
    cursor = cryptdb.cursor()
    benchmark(lambda: cursor.execute(*_workload().query_params("Range")))

"""Benchmark regression guard: fresh BENCH_*.json vs committed baselines.

Walks every baseline JSON, pairs it with the freshly recorded file of the
same name, and compares all throughput-like numeric leaves (``q/s``,
``qps``, ``speedup``, ``per_s``/``per_sec``, ``throughput``; higher is
better).  A
fresh value more than ``--threshold`` (default 30%) below its baseline fails
the run, so silent perf regressions turn into red CI instead of a quiet diff.

Storage metrics run the other way: any ``bytes_per_row`` leaf (the
ciphertext/cache footprints of ``BENCH_storage_expansion.json``) is
lower-is-better, and growing one by more than ``--growth-threshold``
(default 20%) over its baseline fails the run -- a ciphertext-layout change
that silently re-inflates the packed-HOM diet is a regression too.

The fig10 scaling JSON additionally gets a **slope check** on its fresh
measurements: with the real-process drivers, the highest worker count's
CryptDB q/s must beat the 1-worker rate by the scale-out factor the
hardware can support (>=1.5x and never-below-1x for an 8-worker run on
>=8 CPUs; >=1.1x with a 5% noise floor whenever at least two CPUs are
available).  Runs recorded on a single-CPU machine (``available_cpus: 1``)
are only checked for non-collapse, since N processes timeslicing one core
cannot speed up.

Baselines and fresh runs must come from the same mode: a file pair whose
``quick_mode`` flags differ is skipped with a warning rather than compared
(quick-mode scales are not comparable to full runs).  CI keeps quick-mode
baselines under ``benchmarks/baselines/`` next to this script; regenerate
them with::

    cd benchmarks && BENCH_QUICK=1 python -m pytest -q -s
    cp ../BENCH_*.json baselines/

Usage::

    python benchmarks/check_bench_regression.py                # CI defaults
    python benchmarks/check_bench_regression.py --threshold 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HIGHER_IS_BETTER = ("q/s", "qps", "speedup", "per_s", "throughput")
#: Lower-is-better storage leaves (ciphertext / cache footprints).
_LOWER_IS_BETTER = ("bytes_per_row",)
_EXCLUDE = ("loss", "overhead")


def _is_throughput_key(key: str) -> bool:
    lowered = key.lower()
    if any(word in lowered for word in _EXCLUDE):
        return False
    return any(word in lowered for word in _HIGHER_IS_BETTER)


def _is_storage_key(key: str) -> bool:
    return any(word in key.lower() for word in _LOWER_IS_BETTER)


def collect_metrics(node, path: str = "") -> dict[str, float]:
    """Flatten a BENCH payload into ``{json-path: value}`` metric leaves.

    Collects both throughput leaves (higher is better) and storage leaves
    (lower is better); ``compare_file`` picks the direction per leaf.
    """
    metrics: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            child_path = f"{path}.{key}" if path else key
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if _is_throughput_key(key) or _is_storage_key(key):
                    metrics[child_path] = float(value)
            else:
                metrics.update(collect_metrics(value, child_path))
    elif isinstance(node, list):
        for position, value in enumerate(node):
            metrics.update(collect_metrics(value, f"{path}[{position}]"))
    return metrics


def check_scaling_slope(fresh_path: Path) -> tuple[list[str], list[str]]:
    """Scaling-slope guard over the freshly measured fig10 JSON."""
    if not fresh_path.exists():
        return [f"{fresh_path.name}: fresh results missing for slope check"], []
    payload = json.loads(fresh_path.read_text(encoding="utf-8"))
    rows = [
        row for row in payload.get("rows", [])
        if isinstance(row, dict) and "workers" in row and "CryptDB q/s" in row
    ]
    if len(rows) < 2:
        return [f"{fresh_path.name}: no multi-worker scaling rows recorded"], []
    rows.sort(key=lambda row: row["workers"])
    cpus = int(payload.get("available_cpus", 1))
    base = rows[0]["CryptDB q/s"]
    peak = rows[-1]["CryptDB q/s"]
    peak_workers = rows[-1]["workers"]
    slope = peak / base if base else 0.0
    name = fresh_path.name
    failures: list[str] = []
    if cpus >= 2:
        # The full 8-worker rule (>=1.5x, never below 1x) applies when the
        # hardware can express it; smaller worker counts / CPU budgets get a
        # proportionally looser bar with a 5% noise allowance on the floor,
        # since a 2-driver quick run measures only a tens-of-ms sample.
        strict = peak_workers >= 8 and cpus >= 8
        required = 1.5 if strict else 1.1
        floor = base if strict else 0.95 * base
        if peak < floor:
            failures.append(
                f"{name}: {peak_workers}-worker q/s ({peak}) fell below "
                f"1-worker q/s ({base})"
            )
        if slope < required:
            failures.append(
                f"{name}: scaling slope {slope:.2f}x below required "
                f"{required:.2f}x ({peak_workers} workers, {cpus} CPUs)"
            )
    elif slope < 0.5:
        failures.append(
            f"{name}: single-CPU run collapsed to {slope:.2f}x at "
            f"{peak_workers} workers (floor 0.5x)"
        )
    note = (
        f"{name}: scaling slope {slope:.2f}x at {peak_workers} workers "
        f"on {cpus} CPU(s)"
    )
    return failures, [note]


def check_recovery_overhead(
    fresh_path: Path, limit_pct: float = 5.0
) -> tuple[list[str], list[str]]:
    """Hard bar on the durable catalog's steady-state write-through cost.

    ``overhead`` keys are excluded from the generic throughput comparison
    (they are ratios, not rates), so the durability issue's <5% bar is
    enforced here explicitly against the freshly recorded
    ``BENCH_recovery.json``.
    """
    name = fresh_path.name
    if not fresh_path.exists():
        return [f"{name}: fresh results missing for the WAL-overhead check"], []
    payload = json.loads(fresh_path.read_text(encoding="utf-8"))
    overhead = payload.get("steady_state", {}).get("overhead_pct")
    if overhead is None:
        return [f"{name}: no steady_state.overhead_pct recorded"], []
    if float(overhead) > limit_pct:
        return [
            f"{name}: catalog steady-state overhead {float(overhead):.1f}% "
            f"exceeds the {limit_pct:.0f}% bar"
        ], []
    recovery = payload.get("recovery", {})
    note = (
        f"{name}: catalog steady-state overhead {float(overhead):.1f}% "
        f"(limit {limit_pct:.0f}%); recovery replayed "
        f"{recovery.get('wal_records', '?')} records in "
        f"{recovery.get('recover_seconds', '?')}s"
    )
    return [], [note]


def compare_file(
    baseline_path: Path, fresh_path: Path, threshold: float,
    growth_threshold: float = 0.20,
) -> tuple[list[str], list[str]]:
    """Return (failures, notes) for one baseline/fresh pair."""
    name = baseline_path.name
    if not fresh_path.exists():
        return [f"{name}: fresh results missing ({fresh_path})"], []
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    if baseline.get("quick_mode") != fresh.get("quick_mode"):
        return [], [f"{name}: skipped (quick_mode differs between baseline and fresh run)"]
    baseline_metrics = collect_metrics(baseline)
    fresh_metrics = collect_metrics(fresh)
    failures = []
    notes = []
    for path, old in sorted(baseline_metrics.items()):
        new = fresh_metrics.get(path)
        if new is None:
            failures.append(f"{name}: metric {path} disappeared (baseline {old:g})")
            continue
        leaf = path.rsplit(".", 1)[-1]
        if _is_storage_key(leaf):
            if old <= 0:
                # The growth ratio divides by the baseline: a zero (or
                # negative) baseline can't bound anything, and silently
                # passing would disable the guard for exactly the metric it
                # exists to watch.  Fail loudly with the remedy instead.
                failures.append(
                    f"{name}: {path} baseline is {old:g}; cannot check "
                    f"growth against a zero/negative baseline -- regenerate "
                    f"baselines (cd benchmarks && BENCH_QUICK=1 python -m "
                    f"pytest -q -s; cp ../BENCH_*.json baselines/)"
                )
            elif new > old * (1.0 + growth_threshold):
                failures.append(
                    f"{name}: {path} grew {old:g} -> {new:g} "
                    f"({(new / old - 1) * 100:.0f}% growth, "
                    f"limit {growth_threshold * 100:.0f}%)"
                )
            else:
                notes.append(f"{name}: {path} {old:g} -> {new:g} ok")
        elif old > 0 and new < old * (1.0 - threshold):
            failures.append(
                f"{name}: {path} regressed {old:g} -> {new:g} "
                f"({(1 - new / old) * 100:.0f}% drop, limit {threshold * 100:.0f}%)"
            )
        else:
            notes.append(f"{name}: {path} {old:g} -> {new:g} ok")
    for path, new in sorted(fresh_metrics.items()):
        leaf = path.rsplit(".", 1)[-1]
        if _is_storage_key(leaf) and path not in baseline_metrics:
            # A storage leaf with no baseline is unbounded growth waiting to
            # be missed; the committed baselines must cover it.
            failures.append(
                f"{name}: storage metric {path} has no baseline "
                f"(fresh {new:g}) -- regenerate baselines"
            )
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    here = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path, default=here / "baselines",
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh-dir", type=Path, default=here.parent,
                        help="directory holding the freshly recorded BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional drop (default 0.30)")
    parser.add_argument("--growth-threshold", type=float, default=0.20,
                        help="maximum tolerated fractional growth of "
                             "lower-is-better storage metrics (default 0.20)")
    parser.add_argument("--recovery-overhead-limit", type=float, default=5.0,
                        help="maximum tolerated steady-state catalog "
                             "write-through overhead in percent (default 5.0)")
    parser.add_argument("--verbose", action="store_true",
                        help="also print every metric that passed")
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines found under {args.baseline_dir}", file=sys.stderr)
        return 2
    all_failures: list[str] = []
    compared = 0
    for baseline_path in baselines:
        failures, notes = compare_file(
            baseline_path, args.fresh_dir / baseline_path.name, args.threshold,
            args.growth_threshold,
        )
        all_failures.extend(failures)
        for note in notes:
            if note.endswith("ok"):
                compared += 1
                if args.verbose:
                    print(note)
            else:
                print(note)
    scaling_fresh = args.fresh_dir / "BENCH_fig10_tpcc_scaling.json"
    slope_failures, slope_notes = check_scaling_slope(scaling_fresh)
    all_failures.extend(slope_failures)
    for note in slope_notes:
        print(note)
    overhead_failures, overhead_notes = check_recovery_overhead(
        args.fresh_dir / "BENCH_recovery.json", args.recovery_overhead_limit
    )
    all_failures.extend(overhead_failures)
    for note in overhead_notes:
        print(note)
    if all_failures:
        print(f"\n{len(all_failures)} benchmark regression(s):", file=sys.stderr)
        for failure in all_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    if compared == 0:
        # Every pair was skipped (e.g. baselines regenerated without
        # BENCH_QUICK=1, or the CI bench step lost its quick-mode env): a
        # guard that compared nothing must not report success.
        print("benchmark guard: no comparable metrics — every baseline/fresh "
              "pair was skipped; check quick_mode consistency", file=sys.stderr)
        return 2
    print(f"benchmark guard: {compared} metrics within bounds "
          f"(drop {args.threshold * 100:.0f}%, growth "
          f"{args.growth_threshold * 100:.0f}%) across {len(baselines)} files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Scatter-gather scaling: one encrypted workload, 1 -> 2 -> 3 shards.

The paper's proxy targets a single DBMS; this repo's ``repro.shard`` layer
partitions the encrypted tables across N backend instances and merges at
the proxy (k-way ordered merge, homomorphic partial-sum recombination,
broadcast fallback for joins).  This benchmark drives the identical
workload -- bulk load, point lookups, ordered LIMIT/OFFSET windows,
SUM/COUNT, grouped aggregates, range scans -- at each shard count and
records load and query rates plus the merge counters, asserting first that
every answer matches a plaintext single-backend reference byte for byte.

In one Python process more shards mean more merge overhead, not speedup
(the scatter is thread- or serial-mapped over in-process engines); the
numbers quantify the *cost* of distribution, and the regression baseline
pins it.  Real scale-out across processes is measured by the sharded
section of ``bench_fig10_tpcc_scaling.py``.
"""

from __future__ import annotations

import time

import repro
from repro.shard import ShardedBackend

from conftest import BENCH_QUICK, print_table, record_bench

_ROWS = 90 if BENCH_QUICK else 480
_QUERIES = 40 if BENCH_QUICK else 160
_SHARD_COUNTS = (1, 2, 3)


def _query_mix(rows: int, queries: int) -> list[str]:
    mix = []
    for i in range(queries):
        pick = i % 5
        if pick == 0:
            mix.append(f"SELECT balance FROM acct WHERE id = {(i * 13) % rows}")
        elif pick == 1:
            mix.append(
                "SELECT id, balance FROM acct ORDER BY id ASC "
                f"LIMIT 10 OFFSET {i % 20}"
            )
        elif pick == 2:
            mix.append("SELECT SUM(balance), COUNT(*) FROM acct")
        elif pick == 3:
            mix.append("SELECT region, COUNT(*) FROM acct GROUP BY region")
        else:
            mix.append(
                f"SELECT id FROM acct WHERE balance < {200 + (i % 500)} "
                "ORDER BY id DESC LIMIT 5"
            )
    return mix


def _load(conn, rows: int) -> float:
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE acct (id INT, region INT, balance INT)")
    data = [(i, i % 7, (i * 37) % 1000) for i in range(rows)]
    start = time.perf_counter()
    cursor.executemany(
        "INSERT INTO acct (id, region, balance) VALUES (?, ?, ?)", data
    )
    return time.perf_counter() - start


def _run_mix(conn, mix: list[str]) -> tuple[float, list[list[tuple]]]:
    cursor = conn.cursor()
    results = []
    start = time.perf_counter()
    for sql in mix:
        cursor.execute(sql)
        results.append(cursor.fetchall())
    return time.perf_counter() - start, results


def test_shard_scaling():
    mix = _query_mix(_ROWS, _QUERIES)

    # Ground truth: the same workload on one plaintext backend.
    reference = repro.connect(encrypted=False)
    _load(reference, _ROWS)
    _, expected = _run_mix(reference, mix)
    reference.close()

    rows = []
    merge_counters = {}
    qps_curve = []
    for shards in _SHARD_COUNTS:
        backend = ShardedBackend(shards=shards)
        conn = repro.connect(backend=backend, hom_precompute=8)
        load_s = _load(conn, _ROWS)
        elapsed, results = _run_mix(conn, mix)

        # Correctness before speed: every decrypted answer equals the
        # single-backend reference (ordered queries exactly, the rest as
        # multisets).
        for sql, got, want in zip(mix, results, expected):
            if "ORDER BY" in sql:
                assert got == want, f"[{shards} shards] {sql}"
            else:
                assert sorted(map(repr, got)) == sorted(map(repr, want)), (
                    f"[{shards} shards] {sql}"
                )

        stats = backend.stats()
        if shards > 1:
            # The lane genuinely distributes and merges.
            occupied = sum(1 for count in stats["rows_per_shard"] if count)
            assert occupied > 1
            assert stats["scatter_selects"] > 0
            assert stats["aggregate_merges"] > 0
            assert stats["routed_inserts"] > 0
        qps = round(_QUERIES / elapsed, 1)
        qps_curve.append(qps)
        rows.append({
            "shards": shards,
            "load_rows_per_s": round(_ROWS / load_s, 1),
            "query_q/s": qps,
            "rows_per_shard": "/".join(str(c) for c in stats["rows_per_shard"]),
            "scatter": stats["scatter_selects"],
            "broadcast": stats["broadcast_selects"],
            "agg merges": stats["aggregate_merges"],
        })
        if shards == _SHARD_COUNTS[-1]:
            merge_counters = {
                key: value for key, value in stats.items()
                if key not in ("rows_per_shard",)
            }
        conn.close()

    print_table(
        f"Shard scaling ({_ROWS} rows, {_QUERIES} queries, encrypted)", rows
    )

    # Distribution overhead is real but bounded: scattering over in-process
    # shards must not collapse throughput (each shard scans 1/N of the data,
    # so the extra cost is merge + fan-out bookkeeping, not duplicated work).
    assert qps_curve[-1] > 0.15 * qps_curve[0], (
        f"3-shard throughput collapsed: {qps_curve}"
    )

    record_bench("shard_scaling", {
        "rows": rows,
        "shard_counts": list(_SHARD_COUNTS),
        "table_rows": _ROWS,
        "queries": _QUERIES,
        "merge_counters_at_max_shards": merge_counters,
        "results_match_single_backend": True,
        "distribution_cost_3_vs_1": round(qps_curve[0] / qps_curve[-1], 3),
    })

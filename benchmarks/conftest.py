"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one table or figure of the paper's evaluation
(§8).  Absolute numbers differ from the paper -- the substrate is a pure
Python engine, not a 16-core MySQL testbed -- but each benchmark asserts the
*shape* the paper reports (who wins, by roughly what factor) and prints the
rows so EXPERIMENTS.md can record paper-vs-measured values.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.crypto.keys import MasterKey
from repro.crypto.paillier import PaillierKeyPair

#: Set BENCH_QUICK=1 for the CI smoke mode: tiny scales, relaxed asserts.
BENCH_QUICK = os.environ.get("BENCH_QUICK") == "1"

_REPO_ROOT = Path(__file__).resolve().parent.parent


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01,
               message: str = "condition") -> None:
    """Poll ``predicate`` until true; the shared replacement for bare sleeps."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout:g}s waiting for {message}")


def record_bench(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root (the perf trajectory).

    Every benchmark records its headline numbers machine-readably so
    regressions show up as diffs, not just as prose in a terminal capture.
    """
    payload = dict(payload, quick_mode=BENCH_QUICK)
    path = _REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def paillier_keypair() -> PaillierKeyPair:
    # The paper's HOM uses 1024-bit Paillier (2048-bit ciphertexts).
    return PaillierKeyPair.generate(1024)


@pytest.fixture(scope="session")
def small_paillier() -> PaillierKeyPair:
    return PaillierKeyPair.generate(512)


@pytest.fixture()
def make_proxy(small_paillier):
    from repro.core.proxy import CryptDBProxy

    def factory(**kwargs):
        kwargs.setdefault("paillier", small_paillier)
        kwargs.setdefault("master_key", MasterKey.from_passphrase("bench-master"))
        return CryptDBProxy(**kwargs)

    return factory


def print_table(title: str, rows: list[dict]) -> None:
    """Print a small aligned table (captured with pytest -s)."""
    if not rows:
        return
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers}
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(widths[h]) for h in headers))
    for row in rows:
        print("  ".join(str(row[h]).ljust(widths[h]) for h in headers))

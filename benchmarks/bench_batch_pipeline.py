"""Columnar batch pipeline: scalar vs batched bulk load, hash vs nested join.

PR 1 made ``executemany`` reuse one rewrite plan but still executed (and
encrypted) row by row.  The batched pipeline encrypts parameter batches
column-at-a-time -- deduplicating the deterministic DET/JOIN/OPE/SEARCH
layers through the unified ciphertext cache (§3.5.2) -- and forwards a
single multi-row INSERT to the DBMS.  The engine, in turn, hash-joins on
DET-JOIN ciphertexts (``ADJ_PART(...) = ADJ_PART(...)``) instead of
evaluating the UDF pair per candidate row pair.

This benchmark drives both paths with the Figure-10 TPC-C generators:

* bulk load: per-row ``execute`` loop vs one ``executemany`` per table,
  asserting the batched path is >= 1.5x faster (full mode) and that the two
  databases are indistinguishable to the application (identical decrypted
  results under the same master key);
* equi-join: the hash join vs the nested loop (ablated by disabling the
  hash-join term extraction), asserting identical rows and a measurable
  speedup.

Headline numbers land in ``BENCH_batch_pipeline.json`` at the repo root.
Set ``BENCH_QUICK=1`` (CI smoke) for a small scale with relaxed asserts.
"""

import time

import pytest

import repro
import repro.sql.executor as executor_module
from repro.crypto.keys import MasterKey
from repro.workloads.tpcc import TPCCWorkload

from conftest import BENCH_QUICK, print_table, record_bench

if BENCH_QUICK:
    _SCALE = dict(warehouses=1, districts_per_warehouse=1,
                  customers_per_district=4, items=5, orders_per_district=3)
    _HOM_POOL = 500
    _MIN_LOAD_SPEEDUP = 1.2
    _MIN_JOIN_SPEEDUP = 0.8  # smoke mode checks correctness, not scale
else:
    _SCALE = dict(warehouses=1, districts_per_warehouse=2,
                  customers_per_district=24, items=14, orders_per_district=8)
    _HOM_POOL = 3400
    # The batched path must stay comfortably ahead of the scalar loop.  The
    # floor was 3.0x when per-value crypto dominated the scalar path; the
    # primitive overhaul (Jacobian ECC, T-table AES, CRT Paillier) made the
    # scalar path itself ~8x faster, so batching's *relative* edge shrank
    # while both absolute rates improved ~5-8x (see BENCH_batch_pipeline.json
    # history).
    _MIN_LOAD_SPEEDUP = 1.5
    _MIN_JOIN_SPEEDUP = 1.2

_RESULTS: dict = {}


def _connect(small_paillier):
    # Identical configuration for both systems: same master key (so the
    # deterministic layers agree byte-for-byte), same idle-time HOM pool.
    return repro.connect(
        paillier=small_paillier,
        master_key=MasterKey.from_passphrase("batch-pipeline-bench"),
        hom_precompute=_HOM_POOL,
    )


def _load(connection, batched: bool) -> tuple[int, float]:
    workload = TPCCWorkload(**_SCALE)
    cursor = connection.cursor()
    for statement in workload.schema_statements():
        cursor.execute(statement)
    start = time.perf_counter()
    total = 0
    for table, _columns, rows in workload.load_rows():
        sql = workload.insert_statement(table)
        if batched:
            cursor.executemany(sql, rows)
            total += len(rows)
        else:
            for row in rows:
                cursor.execute(sql, row)
                total += 1
    return total, time.perf_counter() - start


@pytest.fixture(scope="module")
def loaded_systems(small_paillier):
    scalar_conn = _connect(small_paillier)
    rows, scalar_seconds = _load(scalar_conn, batched=False)
    batched_conn = _connect(small_paillier)
    _, batched_seconds = _load(batched_conn, batched=True)
    return scalar_conn, batched_conn, rows, scalar_seconds, batched_seconds


_CHECK_QUERIES = [
    ("SELECT c_id, c_d_id, c_first, c_last, c_balance FROM customer "
     "WHERE c_w_id = ? ORDER BY c_d_id, c_id", (1,)),
    ("SELECT o_id, o_c_id, o_ol_cnt FROM orders WHERE o_d_id = ? "
     "ORDER BY o_id", (1,)),
    ("SELECT i_id, i_name, i_price FROM item WHERE i_price > ? ORDER BY i_id", (10,)),
    ("SELECT SUM(ol_amount) FROM order_line WHERE ol_d_id = ?", (1,)),
]


def test_bulk_load_batched_vs_scalar(benchmark, loaded_systems):
    scalar_conn, batched_conn, rows, scalar_seconds, batched_seconds = loaded_systems
    speedup = scalar_seconds / batched_seconds
    cache = batched_conn.proxy.stats.cache_stats()
    stats_rows = [
        {"path": "scalar execute() loop", "rows": rows,
         "seconds": round(scalar_seconds, 2),
         "rows/s": round(rows / scalar_seconds, 1)},
        {"path": "batched executemany()", "rows": rows,
         "seconds": round(batched_seconds, 2),
         "rows/s": round(rows / batched_seconds, 1)},
    ]
    print_table("TPC-C bulk load: scalar vs batched pipeline", stats_rows)
    print(f"speedup: {speedup:.2f}x  cache: det {cache.det_hits}h/{cache.det_misses}m, "
          f"ope {cache.ope_hits}h/{cache.ope_misses}m, "
          f"search {cache.search_hits}h/{cache.search_misses}m, "
          f"hom pool {cache.hom_pool_hits}h/{cache.hom_pool_misses}m")

    # The application cannot tell the two systems apart: every query
    # decrypts to byte-identical results.
    for sql, params in _CHECK_QUERIES:
        scalar_result = scalar_conn.execute(sql, params).fetchall()
        batched_result = batched_conn.execute(sql, params).fetchall()
        assert scalar_result == batched_result, sql
        assert scalar_result, f"check query returned no rows: {sql}"

    _RESULTS["bulk_load"] = {
        "rows": rows,
        "scalar_seconds": round(scalar_seconds, 3),
        "batched_seconds": round(batched_seconds, 3),
        "scalar_rows_per_s": round(rows / scalar_seconds, 2),
        "batched_rows_per_s": round(rows / batched_seconds, 2),
        "speedup": round(speedup, 2),
        "results_identical": True,
        "cache": cache.as_dict(),
    }
    record_bench("batch_pipeline", _RESULTS)
    assert speedup >= _MIN_LOAD_SPEEDUP
    assert batched_conn.proxy.stats.batched_statements > 0

    workload = TPCCWorkload(**_SCALE)
    cursor = batched_conn.cursor()
    benchmark(lambda: cursor.execute(*workload.query_params("Equality")))


_JOIN_QUERIES = [
    ("SELECT COUNT(*) FROM orders JOIN customer ON o_c_id = c_id "
     "WHERE o_w_id = ?", (1,)),
    ("SELECT COUNT(*) FROM order_line JOIN item ON ol_i_id = i_id "
     "WHERE ol_quantity > ?", (0,)),
    ("SELECT o_id, c_last FROM orders JOIN customer ON o_c_id = c_id "
     "WHERE o_d_id = ? ORDER BY o_id", (1,)),
]


def test_equi_join_hash_vs_nested_loop(loaded_systems, monkeypatch):
    _scalar, conn, _rows, _s, _b = loaded_systems
    # Warm plans and onion adjustments so both timed paths run steady-state.
    for sql, params in _JOIN_QUERIES:
        conn.execute(sql, params)

    def run_all():
        start = time.perf_counter()
        results = [conn.execute(sql, params).fetchall() for sql, params in _JOIN_QUERIES]
        return results, time.perf_counter() - start

    hash_results, hash_seconds = run_all()
    # Ablation: with no hash-joinable term every join falls back to the
    # nested loop, which is exactly the pre-refactor execution path.
    monkeypatch.setattr(executor_module, "_hash_join_candidates", lambda condition: [])
    nested_results, nested_seconds = run_all()
    monkeypatch.undo()

    assert [sorted(r) for r in hash_results] == [sorted(r) for r in nested_results]
    assert any(result for result in hash_results)
    speedup = nested_seconds / hash_seconds
    print_table("Equi-join: DET-JOIN hash join vs nested loop", [
        {"path": "hash join (ADJ_PART buckets)", "ms": round(hash_seconds * 1000, 1)},
        {"path": "nested loop (ablated)", "ms": round(nested_seconds * 1000, 1)},
    ])
    print(f"join speedup: {speedup:.2f}x")
    _RESULTS["equi_join"] = {
        "hash_seconds": round(hash_seconds, 4),
        "nested_loop_seconds": round(nested_seconds, 4),
        "speedup": round(speedup, 2),
        "results_identical": True,
    }
    record_bench("batch_pipeline", _RESULTS)
    assert speedup >= _MIN_JOIN_SPEEDUP


_CACHE_BUDGET = 128 * 1024 if BENCH_QUICK else 256 * 1024


def test_cache_budget_holds_under_load(small_paillier, loaded_systems):
    """A byte-budgeted proxy stays under its ceiling by evicting LRU units.

    The unbudgeted bulk-load run above reports its cache footprint in
    ``_RESULTS["bulk_load"]["cache"]``; this run loads the same TPC-C data
    through a proxy capped well below that footprint and asserts the proxy
    sheds memo units (counters > 0) while the measured ``estimated_bytes``
    never ends a statement over budget -- the §8.4.1 "proxy fits in a fixed
    memory slice" deployment story.
    """
    _scalar, unbudgeted, _rows, _s, _b = loaded_systems
    unbudgeted_bytes = unbudgeted.proxy.stats.cache_stats().estimated_bytes

    conn = repro.connect(
        paillier=small_paillier,
        master_key=MasterKey.from_passphrase("batch-pipeline-bench"),
        hom_precompute=_HOM_POOL,
        cache_budget_bytes=_CACHE_BUDGET,
    )
    try:
        _load(conn, batched=True)
        for sql, params in _CHECK_QUERIES:
            assert conn.execute(sql, params).fetchall()
        stats = conn.proxy.stats.cache_stats()
        print_table("Cache under a byte budget", [{
            "budget": _CACHE_BUDGET,
            "estimated_bytes": stats.estimated_bytes,
            "unbudgeted_bytes": unbudgeted_bytes,
            "evictions": stats.evictions,
            "evicted_bytes": stats.evicted_bytes,
        }])
        _RESULTS["cache_budget"] = {
            "budget_bytes": _CACHE_BUDGET,
            "estimated_bytes": stats.estimated_bytes,
            "unbudgeted_estimated_bytes": unbudgeted_bytes,
            "evictions": stats.evictions,
            "evicted_bytes": stats.evicted_bytes,
        }
        record_bench("batch_pipeline", _RESULTS)
        assert stats.estimated_bytes <= _CACHE_BUDGET
        assert stats.evictions > 0 and stats.evicted_bytes > 0
    finally:
        conn.close()

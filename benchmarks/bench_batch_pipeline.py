"""Columnar batch pipeline: scalar vs batched bulk load, hash vs nested join.

PR 1 made ``executemany`` reuse one rewrite plan but still executed (and
encrypted) row by row.  The batched pipeline encrypts parameter batches
column-at-a-time -- deduplicating the deterministic DET/JOIN/OPE/SEARCH
layers through the unified ciphertext cache (§3.5.2) -- and forwards a
single multi-row INSERT to the DBMS.  The engine, in turn, hash-joins on
DET-JOIN ciphertexts (``ADJ_PART(...) = ADJ_PART(...)``) instead of
evaluating the UDF pair per candidate row pair.

This benchmark drives both paths with the Figure-10 TPC-C generators:

* bulk load: per-row ``execute`` loop vs one ``executemany`` per table,
  asserting the batched path is >= 1.5x faster (full mode) and that the two
  databases are indistinguishable to the application (identical decrypted
  results under the same master key);
* equi-join: the hash join vs the nested loop (ablated by disabling the
  hash-join term extraction), asserting identical rows and a measurable
  speedup.

Headline numbers land in ``BENCH_batch_pipeline.json`` at the repo root.
Set ``BENCH_QUICK=1`` (CI smoke) for a small scale with relaxed asserts.
"""

import os
import time

import pytest

import repro
import repro.sql.executor as executor_module
from repro.crypto.keys import MasterKey
from repro.durability import WriteAheadLog, replay_records
from repro.workloads.tpcc import TPCCWorkload

from conftest import BENCH_QUICK, print_table, record_bench

if BENCH_QUICK:
    _SCALE = dict(warehouses=1, districts_per_warehouse=1,
                  customers_per_district=4, items=5, orders_per_district=3)
    _HOM_POOL = 500
    _MIN_LOAD_SPEEDUP = 1.2
    _MIN_JOIN_SPEEDUP = 0.8  # smoke mode checks correctness, not scale
else:
    _SCALE = dict(warehouses=1, districts_per_warehouse=2,
                  customers_per_district=24, items=14, orders_per_district=8)
    _HOM_POOL = 3400
    # The batched path must stay comfortably ahead of the scalar loop.  The
    # floor was 3.0x when per-value crypto dominated the scalar path; the
    # primitive overhaul (Jacobian ECC, T-table AES, CRT Paillier) made the
    # scalar path itself ~8x faster, so batching's *relative* edge shrank
    # while both absolute rates improved ~5-8x (see BENCH_batch_pipeline.json
    # history).
    _MIN_LOAD_SPEEDUP = 1.5
    _MIN_JOIN_SPEEDUP = 1.2

_RESULTS: dict = {}


def _connect(small_paillier):
    # Identical configuration for both systems: same master key (so the
    # deterministic layers agree byte-for-byte), same idle-time HOM pool.
    return repro.connect(
        paillier=small_paillier,
        master_key=MasterKey.from_passphrase("batch-pipeline-bench"),
        hom_precompute=_HOM_POOL,
    )


def _load(connection, batched: bool) -> tuple[int, float]:
    workload = TPCCWorkload(**_SCALE)
    cursor = connection.cursor()
    for statement in workload.schema_statements():
        cursor.execute(statement)
    start = time.perf_counter()
    total = 0
    for table, _columns, rows in workload.load_rows():
        sql = workload.insert_statement(table)
        if batched:
            cursor.executemany(sql, rows)
            total += len(rows)
        else:
            for row in rows:
                cursor.execute(sql, row)
                total += 1
    return total, time.perf_counter() - start


@pytest.fixture(scope="module")
def loaded_systems(small_paillier):
    scalar_conn = _connect(small_paillier)
    rows, scalar_seconds = _load(scalar_conn, batched=False)
    batched_conn = _connect(small_paillier)
    _, batched_seconds = _load(batched_conn, batched=True)
    return scalar_conn, batched_conn, rows, scalar_seconds, batched_seconds


_CHECK_QUERIES = [
    ("SELECT c_id, c_d_id, c_first, c_last, c_balance FROM customer "
     "WHERE c_w_id = ? ORDER BY c_d_id, c_id", (1,)),
    ("SELECT o_id, o_c_id, o_ol_cnt FROM orders WHERE o_d_id = ? "
     "ORDER BY o_id", (1,)),
    ("SELECT i_id, i_name, i_price FROM item WHERE i_price > ? ORDER BY i_id", (10,)),
    ("SELECT SUM(ol_amount) FROM order_line WHERE ol_d_id = ?", (1,)),
]


def test_bulk_load_batched_vs_scalar(benchmark, loaded_systems):
    scalar_conn, batched_conn, rows, scalar_seconds, batched_seconds = loaded_systems
    speedup = scalar_seconds / batched_seconds
    cache = batched_conn.proxy.stats.cache_stats()
    stats_rows = [
        {"path": "scalar execute() loop", "rows": rows,
         "seconds": round(scalar_seconds, 2),
         "rows/s": round(rows / scalar_seconds, 1)},
        {"path": "batched executemany()", "rows": rows,
         "seconds": round(batched_seconds, 2),
         "rows/s": round(rows / batched_seconds, 1)},
    ]
    print_table("TPC-C bulk load: scalar vs batched pipeline", stats_rows)
    print(f"speedup: {speedup:.2f}x  cache: det {cache.det_hits}h/{cache.det_misses}m, "
          f"ope {cache.ope_hits}h/{cache.ope_misses}m, "
          f"search {cache.search_hits}h/{cache.search_misses}m, "
          f"hom pool {cache.hom_pool_hits}h/{cache.hom_pool_misses}m")

    # The application cannot tell the two systems apart: every query
    # decrypts to byte-identical results.
    for sql, params in _CHECK_QUERIES:
        scalar_result = scalar_conn.execute(sql, params).fetchall()
        batched_result = batched_conn.execute(sql, params).fetchall()
        assert scalar_result == batched_result, sql
        assert scalar_result, f"check query returned no rows: {sql}"

    _RESULTS["bulk_load"] = {
        "rows": rows,
        "scalar_seconds": round(scalar_seconds, 3),
        "batched_seconds": round(batched_seconds, 3),
        "scalar_rows_per_s": round(rows / scalar_seconds, 2),
        "batched_rows_per_s": round(rows / batched_seconds, 2),
        "speedup": round(speedup, 2),
        "results_identical": True,
        "cache": cache.as_dict(),
    }
    record_bench("batch_pipeline", _RESULTS)
    assert speedup >= _MIN_LOAD_SPEEDUP
    assert batched_conn.proxy.stats.batched_statements > 0

    workload = TPCCWorkload(**_SCALE)
    cursor = batched_conn.cursor()
    benchmark(lambda: cursor.execute(*workload.query_params("Equality")))


_JOIN_QUERIES = [
    ("SELECT COUNT(*) FROM orders JOIN customer ON o_c_id = c_id "
     "WHERE o_w_id = ?", (1,)),
    ("SELECT COUNT(*) FROM order_line JOIN item ON ol_i_id = i_id "
     "WHERE ol_quantity > ?", (0,)),
    ("SELECT o_id, c_last FROM orders JOIN customer ON o_c_id = c_id "
     "WHERE o_d_id = ? ORDER BY o_id", (1,)),
]


def test_equi_join_hash_vs_nested_loop(loaded_systems, monkeypatch):
    _scalar, conn, _rows, _s, _b = loaded_systems
    # Warm plans and onion adjustments so both timed paths run steady-state.
    for sql, params in _JOIN_QUERIES:
        conn.execute(sql, params)

    def run_all():
        start = time.perf_counter()
        results = [conn.execute(sql, params).fetchall() for sql, params in _JOIN_QUERIES]
        return results, time.perf_counter() - start

    hash_results, hash_seconds = run_all()
    # Ablation: with no hash-joinable term every join falls back to the
    # nested loop, which is exactly the pre-refactor execution path.
    monkeypatch.setattr(executor_module, "_hash_join_candidates", lambda condition: [])
    nested_results, nested_seconds = run_all()
    monkeypatch.undo()

    assert [sorted(r) for r in hash_results] == [sorted(r) for r in nested_results]
    assert any(result for result in hash_results)
    speedup = nested_seconds / hash_seconds
    print_table("Equi-join: DET-JOIN hash join vs nested loop", [
        {"path": "hash join (ADJ_PART buckets)", "ms": round(hash_seconds * 1000, 1)},
        {"path": "nested loop (ablated)", "ms": round(nested_seconds * 1000, 1)},
    ])
    print(f"join speedup: {speedup:.2f}x")
    _RESULTS["equi_join"] = {
        "hash_seconds": round(hash_seconds, 4),
        "nested_loop_seconds": round(nested_seconds, 4),
        "speedup": round(speedup, 2),
        "results_identical": True,
    }
    record_bench("batch_pipeline", _RESULTS)
    assert speedup >= _MIN_JOIN_SPEEDUP


_CACHE_BUDGET = 128 * 1024 if BENCH_QUICK else 256 * 1024


def test_cache_budget_holds_under_load(small_paillier, loaded_systems):
    """A byte-budgeted proxy stays under its ceiling by evicting LRU units.

    The unbudgeted bulk-load run above reports its cache footprint in
    ``_RESULTS["bulk_load"]["cache"]``; this run loads the same TPC-C data
    through a proxy capped well below that footprint and asserts the proxy
    sheds memo units (counters > 0) while the measured ``estimated_bytes``
    never ends a statement over budget -- the §8.4.1 "proxy fits in a fixed
    memory slice" deployment story.
    """
    _scalar, unbudgeted, _rows, _s, _b = loaded_systems
    unbudgeted_bytes = unbudgeted.proxy.stats.cache_stats().estimated_bytes

    conn = repro.connect(
        paillier=small_paillier,
        master_key=MasterKey.from_passphrase("batch-pipeline-bench"),
        hom_precompute=_HOM_POOL,
        cache_budget_bytes=_CACHE_BUDGET,
    )
    try:
        _load(conn, batched=True)
        for sql, params in _CHECK_QUERIES:
            assert conn.execute(sql, params).fetchall()
        stats = conn.proxy.stats.cache_stats()
        print_table("Cache under a byte budget", [{
            "budget": _CACHE_BUDGET,
            "estimated_bytes": stats.estimated_bytes,
            "unbudgeted_bytes": unbudgeted_bytes,
            "evictions": stats.evictions,
            "evicted_bytes": stats.evicted_bytes,
        }])
        _RESULTS["cache_budget"] = {
            "budget_bytes": _CACHE_BUDGET,
            "estimated_bytes": stats.estimated_bytes,
            "unbudgeted_estimated_bytes": unbudgeted_bytes,
            "evictions": stats.evictions,
            "evicted_bytes": stats.evicted_bytes,
        }
        record_bench("batch_pipeline", _RESULTS)
        assert stats.estimated_bytes <= _CACHE_BUDGET
        assert stats.evictions > 0 and stats.evicted_bytes > 0
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# WAL overhead + recovery time (the durable metadata catalog)
# ---------------------------------------------------------------------------
_WAL_STEADY_STATEMENTS = 150 if BENCH_QUICK else 600
_WAL_TARGET_RECORDS = 2_000 if BENCH_QUICK else 10_000
_WAL_KWARGS = dict(hom_precompute=32)


def _steady_state_run(conn, statements: int) -> float:
    """One warmed-up DML/SELECT mix; returns the timed-loop seconds.

    Warmup creates the schema, settles every onion adjustment and caches
    every plan shape, so the timed loop measures pure steady state -- the
    regime where the catalog should write (almost) nothing.
    """
    cursor = conn.cursor()
    cursor.execute("CREATE TABLE ledger (id INT, qty INT, note TEXT)")
    cursor.executemany(
        "INSERT INTO ledger (id, qty, note) VALUES (?, ?, ?)",
        [(i, i * 3, f"n{i}") for i in range(8)],
    )
    cursor.execute("SELECT qty FROM ledger WHERE id = ?", (1,))
    cursor.execute("SELECT id FROM ledger WHERE qty > ?", (5,))
    cursor.execute("UPDATE ledger SET note = ? WHERE id = ?", ("w", 1))
    start = time.perf_counter()
    for i in range(statements):
        step = i % 4
        if step == 0:
            cursor.execute(
                "INSERT INTO ledger (id, qty, note) VALUES (?, ?, ?)",
                (100 + i, i, f"s{i}"),
            )
        elif step == 1:
            cursor.execute("SELECT qty FROM ledger WHERE id = ?", (100 + i - 1,))
        elif step == 2:
            cursor.execute(
                "UPDATE ledger SET note = ? WHERE id = ?", (f"u{i}", 100 + i - 2)
            )
        else:
            cursor.execute("SELECT id FROM ledger WHERE qty > ?", (i,))
    return time.perf_counter() - start


def test_wal_overhead_and_recovery_time(small_paillier, tmp_path):
    """Catalog write-through overhead and snapshot+WAL recovery time.

    Steady state: the same warmed DML/SELECT mix runs against two
    file-backed SQLite deployments -- one plain, one writing its metadata
    through the durable catalog -- twice each (best-of-two shaves timer
    noise); ``check_bench_regression.py`` holds the overhead under 5%,
    the durability issue's bar.  Recovery: the catalog's WAL is then grown
    to ~10k records (2k in quick mode) and one cold ``connect(catalog=...)``
    is timed end to end -- load, checksum-verify, replay, proxy rebuild.
    """

    def one_run(tag: str, attempt: int) -> float:
        kwargs = {}
        if tag == "catalog":
            kwargs["catalog"] = os.fspath(tmp_path / f"{tag}{attempt}.wal")
        conn = repro.connect(
            os.fspath(tmp_path / f"{tag}{attempt}.db"),
            master_key=MasterKey.from_passphrase("batch-pipeline-bench"),
            paillier=small_paillier,
            **_WAL_KWARGS,
            **kwargs,
        )
        try:
            return _steady_state_run(conn, _WAL_STEADY_STATEMENTS)
        finally:
            conn.close()

    # Paired rounds, lanes alternating inside each: the overhead guard uses
    # the *best ratio across rounds*, so a scheduler hiccup inflating one
    # lane in one round cannot fail CI, while a real per-statement cost
    # (say, an accidental record append on every DML) inflates every round
    # alike and is still caught.
    times = {"plain": float("inf"), "catalog": float("inf")}
    ratios = []
    for attempt in range(3):
        round_times = {tag: one_run(tag, attempt) for tag in ("plain", "catalog")}
        ratios.append(round_times["catalog"] / round_times["plain"])
        for tag, seconds in round_times.items():
            times[tag] = min(times[tag], seconds)
    plain_seconds, catalog_seconds = times["plain"], times["catalog"]
    overhead_pct = (min(ratios) - 1.0) * 100.0

    # Grow the surviving WAL to the target record count, then time one cold
    # restart from it.  The filler records are shaped like real metadata
    # diffs (what a long-lived proxy accumulates between compactions).
    db_path = os.fspath(tmp_path / "catalog1.db")
    wal_path = os.fspath(tmp_path / "catalog1.wal")
    wal = WriteAheadLog(wal_path)
    existing = wal.load()
    version = replay_records(existing).version
    for _ in range(max(0, _WAL_TARGET_RECORDS - len(existing))):
        wal.append({"t": "meta", "version": version})
    wal.sync()
    wal.close()
    wal_records = len(WriteAheadLog(wal_path).load())
    wal_bytes = os.path.getsize(wal_path)

    start = time.perf_counter()
    conn = repro.connect(
        db_path,
        catalog=wal_path,
        master_key=MasterKey.from_passphrase("batch-pipeline-bench"),
        paillier=small_paillier,
        **_WAL_KWARGS,
    )
    recover_seconds = time.perf_counter() - start
    try:
        rows = conn.execute("SELECT COUNT(*) FROM ledger").fetchall()
        assert rows and rows[0][0] > 0
    finally:
        conn.close()

    statements = _WAL_STEADY_STATEMENTS
    print_table("Durable catalog: steady-state WAL overhead", [
        {"lane": "plain sqlite", "seconds": round(plain_seconds, 3),
         "stmts/s": round(statements / plain_seconds, 1)},
        {"lane": "sqlite + catalog", "seconds": round(catalog_seconds, 3),
         "stmts/s": round(statements / catalog_seconds, 1)},
    ])
    print(f"catalog overhead: {overhead_pct:.2f}%  "
          f"recovery: {wal_records} records ({wal_bytes} bytes) "
          f"replayed in {recover_seconds * 1000:.1f} ms")
    record_bench("recovery", {
        "steady_state": {
            "statements": statements,
            "plain_seconds": round(plain_seconds, 4),
            "catalog_seconds": round(catalog_seconds, 4),
            "plain_stmts_per_s": round(statements / plain_seconds, 2),
            "catalog_stmts_per_s": round(statements / catalog_seconds, 2),
            "overhead_pct": round(overhead_pct, 2),
        },
        "recovery": {
            "wal_records": wal_records,
            "wal_bytes": wal_bytes,
            "recover_seconds": round(recover_seconds, 4),
            "records_per_s": round(wal_records / recover_seconds, 1),
        },
    })
    # The hard <5% bar lives in check_bench_regression.py (it sees the
    # recorded JSON); here we only demand the catalog lane didn't collapse.
    assert catalog_seconds < plain_seconds * 2.0

"""Figure 13: microbenchmarks of the cryptographic schemes.

Paper values (per unit of data): Blowfish 0.0001 ms, AES-CBC(1KB) 0.008 ms,
AES-CMC(1KB) 0.016 ms, OPE(1 int) 9.0 ms, SEARCH(1 word) 0.01 ms,
HOM encrypt 9.7 ms / decrypt 0.7 ms / add 0.005 ms, JOIN-ADJ 0.52 ms.
Pure-Python absolute numbers are larger; the asserted *shape* is that OPE and
HOM encryption dominate everything else, exactly the paper's conclusion that
motivates ciphertext pre-computation and caching (§3.5.2).
"""

import pytest

from repro.crypto.aes import AES
from repro.crypto.det import DET
from repro.crypto.feistel import FeistelPRP
from repro.crypto.join_adj import JoinAdj
from repro.crypto.modes import cbc_encrypt, cmc_encrypt
from repro.crypto.ope import OPE
from repro.crypto.paillier import Paillier
from repro.crypto.rnd import RND
from repro.crypto.search import SEARCH

KEY = b"benchmark-key-16"
ONE_KB = b"x" * 1024


def test_fig13_feistel_int_encrypt(benchmark):
    prp = FeistelPRP(KEY)
    benchmark(prp.encrypt_int, 123456789)


def test_fig13_aes_cbc_1kb(benchmark):
    cipher = AES(KEY)
    iv = b"\x01" * 16
    benchmark(cbc_encrypt, cipher, iv, ONE_KB)


def test_fig13_aes_cmc_1kb(benchmark):
    cipher = AES(KEY)
    benchmark(cmc_encrypt, cipher, ONE_KB)


def test_fig13_det_int(benchmark):
    det = DET(KEY)
    benchmark(det.encrypt_int, 987654321)


def test_fig13_rnd_int(benchmark):
    rnd = RND(KEY)
    iv = RND.generate_iv()
    benchmark(rnd.encrypt_int, 987654321, iv)


def test_fig13_ope_encrypt_int(benchmark):
    ope = OPE(KEY, cache=False)
    counter = iter(range(10_000_000))
    benchmark(lambda: ope.encrypt(next(counter)))


def test_fig13_ope_compare_is_free(benchmark):
    ope = OPE(KEY)
    a, b = ope.encrypt(5), ope.encrypt(9)
    benchmark(lambda: a < b)


def test_fig13_search_encrypt_word(benchmark):
    search = SEARCH(KEY)
    benchmark(search.encrypt_word, "confidential")


def test_fig13_search_match(benchmark):
    search = SEARCH(KEY)
    ciphertext = search.encrypt("alpha beta gamma delta")
    token = search.token("gamma")
    benchmark(SEARCH.matches, ciphertext, token)


def test_fig13_hom_encrypt(benchmark, paillier_keypair):
    benchmark(paillier_keypair.encrypt, 123456)


def test_fig13_hom_decrypt(benchmark, paillier_keypair):
    ciphertext = paillier_keypair.encrypt(123456)
    benchmark(paillier_keypair.decrypt, ciphertext)


def test_fig13_hom_add(benchmark, paillier_keypair):
    hom = Paillier(paillier_keypair.public)
    a = paillier_keypair.encrypt(1)
    b = paillier_keypair.encrypt(2)
    benchmark(hom.add, a, b)


def test_fig13_join_adj_hash(benchmark):
    adj = JoinAdj.for_column(KEY, "t", "c")
    benchmark(adj.hash_value, b"42")


def test_fig13_shape_ope_and_hom_dominate(paillier_keypair):
    """The paper's qualitative result: OPE and HOM encryption are the slow ops."""
    import time

    def time_of(fn, repeat=5):
        start = time.perf_counter()
        for _ in range(repeat):
            fn()
        return (time.perf_counter() - start) / repeat

    det = DET(KEY)
    ope = OPE(KEY, cache=False)
    values = iter(range(1000, 100000))
    det_time = time_of(lambda: det.encrypt_int(123))
    ope_time = time_of(lambda: ope.encrypt(next(values)))
    hom_time = time_of(lambda: paillier_keypair.encrypt(123))
    hom_add_time = time_of(lambda: Paillier(paillier_keypair.public).add(3, 9))
    assert ope_time > det_time * 5
    assert hom_time > hom_add_time * 5

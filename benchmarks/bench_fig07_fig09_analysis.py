"""Figures 7, 8 and 9: trace statistics, developer effort, onion levels.

* Figure 7: schema statistics of the (synthetic) sql.mit.edu trace.
* Figure 8: annotations and login/logout code per application.
* Figure 9: per-application functional analysis (needs plaintext / HOM /
  SEARCH) and steady-state MinEnc levels, plus the trace-wide analysis where
  the paper finds 99.5% of columns supportable.
"""

import pytest

from repro.analysis.functional import ColumnClassifier
from repro.principals.annotations import parse_annotated_schema
from repro.workloads.gradapply import GRADAPPLY_ANNOTATED_SCHEMA
from repro.workloads.hotcrp import HOTCRP_ANNOTATED_SCHEMA
from repro.workloads.mit602 import MIT602_QUERIES, MIT602_SCHEMA
from repro.workloads.openemr import OPENEMR_QUERIES, OPENEMR_SCHEMA
from repro.workloads.phpbb import PHPBB_ANNOTATED_SCHEMA
from repro.workloads.phpcalendar import PHPCALENDAR_QUERIES, PHPCALENDAR_SCHEMA
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.trace import FIGURE7_PAPER, generate_trace

from conftest import print_table


def test_fig07_trace_schema_statistics(benchmark):
    trace = benchmark(generate_trace, 40, 25)
    ratio = trace.total_columns / trace.used_columns
    paper_ratio = FIGURE7_PAPER["columns_total"] / FIGURE7_PAPER["columns_used"]
    print_table(
        "Figure 7: schema statistics (scaled synthetic trace vs paper)",
        [
            {"metric": "columns in complete schema", "paper": FIGURE7_PAPER["columns_total"],
             "synthetic": trace.total_columns},
            {"metric": "columns used in queries", "paper": FIGURE7_PAPER["columns_used"],
             "synthetic": trace.used_columns},
            {"metric": "total/used ratio", "paper": round(paper_ratio, 2),
             "synthetic": round(ratio, 2)},
        ],
    )
    assert abs(ratio - paper_ratio) / paper_ratio < 0.2


def test_fig08_annotation_effort(benchmark):
    paper = {
        "phpBB": (31, 11, 7, 23),
        "HotCRP": (29, 12, 2, 22),
        "grad-apply": (111, 13, 2, 103),
    }
    schemas = {
        "phpBB": PHPBB_ANNOTATED_SCHEMA,
        "HotCRP": HOTCRP_ANNOTATED_SCHEMA,
        "grad-apply": GRADAPPLY_ANNOTATED_SCHEMA,
    }
    rows = []
    for name, text in schemas.items():
        parsed = benchmark.pedantic(parse_annotated_schema, args=(text,), iterations=1, rounds=1) \
            if name == "phpBB" else parse_annotated_schema(text)
        rows.append({
            "application": name,
            "annotations (ours)": parsed.annotation_count,
            "unique (ours)": parsed.unique_annotation_count,
            "sensitive fields (ours)": len(parsed.enc_for),
            "annotations (paper)": paper[name][0],
            "unique (paper)": paper[name][1],
            "fields secured (paper)": paper[name][3],
        })
        # Shape: a handful of unique annotations secures many fields; unique
        # count is in the paper's ~11-13 band order of magnitude.
        assert parsed.unique_annotation_count <= 15
        assert parsed.annotation_count >= parsed.unique_annotation_count
    rows.append({
        "application": "TPC-C (single princ.)", "annotations (ours)": 0, "unique (ours)": 0,
        "sensitive fields (ours)": TPCCWorkload().column_count(),
        "annotations (paper)": 0, "unique (paper)": 0, "fields secured (paper)": 92,
    })
    print_table("Figure 8: developer effort (annotations)", rows)


def test_fig09_application_functional_analysis(benchmark):
    applications = [
        ("OpenEMR", OPENEMR_SCHEMA, OPENEMR_QUERIES),
        ("MIT 6.02", MIT602_SCHEMA, MIT602_QUERIES),
        ("PHP-calendar", PHPCALENDAR_SCHEMA, PHPCALENDAR_QUERIES),
    ]

    def analyse():
        rows = []
        for name, schema, queries in applications:
            classifier = ColumnClassifier(name)
            classifier.add_schema(schema)
            classifier.add_queries(queries)
            rows.append(classifier.report().as_row())
        return rows

    rows = benchmark(analyse)
    print_table("Figure 9 (applications): column classes", rows)
    for row in rows:
        # Shape: the vast majority of columns are supportable, most stay at RND,
        # OPE is the least common level -- matching Figure 9.
        assert row["needs_plaintext"] <= 3
        assert row["RND"] >= row["DET"] >= 0
        assert row["RND"] > row["OPE"]


def test_fig09_trace_analysis(benchmark):
    trace = generate_trace(applications=40, columns_per_application=25)

    def analyse():
        classifier = ColumnClassifier("sql.mit.edu (synthetic)")
        classifier.add_schema(trace.all_schemas())
        classifier.add_queries(trace.all_queries())
        return classifier.report()

    report = benchmark(analyse)
    row = report.as_row()
    row["supported %"] = round(report.supported_fraction * 100, 2)
    row["paper supported %"] = 99.5
    print_table("Figure 9 (trace): column classes", [row])
    assert report.supported_fraction > 0.97
    counts = report.min_enc_counts()
    assert counts["RND"] > counts["DET"] > counts["OPE"]

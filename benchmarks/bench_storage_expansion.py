"""§8.4.3 storage expansion, per table, with the packed-HOM ciphertext diet.

The paper measures a 3.76x database blow-up for fully-encrypted TPC-C,
dominated by Paillier: every 4-byte integer becomes a ciphertext of twice
the modulus.  Slot packing amortizes that ciphertext across ``slots_for(n)``
numeric columns of the same row, so the Add-onion footprint should shrink by
roughly the packing factor while every other onion stays put.

This benchmark loads identical data three ways -- plaintext engine,
encrypted proxy with packing (the default), encrypted proxy with scalar HOM
(``hom_packing=False``) -- and records bytes/row per TPC-C table plus a
10-integer-column synthetic table where packing has the most to amortize.
``check_bench_regression.py`` treats every ``bytes_per_row`` metric as
lower-is-better: ciphertext growth over 20% fails CI just like a throughput
regression.
"""

import pytest

from repro.core.proxy import CryptDBProxy
from repro.crypto.keys import MasterKey
from repro.sql.engine import Database
from repro.workloads.tpcc import TPCCWorkload

from conftest import BENCH_QUICK, print_table, record_bench

_SCALE = (
    dict(warehouses=1, districts_per_warehouse=1, customers_per_district=4,
         items=5, orders_per_district=3)
    if BENCH_QUICK
    else dict(warehouses=1, districts_per_warehouse=2, customers_per_district=8,
              items=12, orders_per_district=6)
)
_WIDE_ROWS = 24 if BENCH_QUICK else 96
_WIDE_COLUMNS = 10
_CACHE_QUERIES = 20 if BENCH_QUICK else 60

_RESULTS: dict = {}


def _wide_statements() -> tuple[str, str, list[tuple]]:
    columns = [f"c{i}" for i in range(_WIDE_COLUMNS)]
    create = "CREATE TABLE wide ({})".format(
        ", ".join(f"{name} INT" for name in columns)
    )
    insert = "INSERT INTO wide ({}) VALUES ({})".format(
        ", ".join(columns), ", ".join("?" for _ in columns)
    )
    rows = [
        tuple((row * 37 + col * 11) % 5000 - 2500 for col in range(_WIDE_COLUMNS))
        for row in range(_WIDE_ROWS)
    ]
    return create, insert, rows


def _load(target, workload: TPCCWorkload) -> None:
    """Schema + TPC-C rows + the synthetic wide table, bulk-loaded."""
    for statement in workload.schema_statements():
        target.execute(statement)
    create, insert, rows = _wide_statements()
    target.execute(create)
    if hasattr(target, "executemany"):
        for table, _columns, batch in workload.load_rows():
            target.executemany(workload.insert_statement(table), batch)
        target.executemany(insert, rows)
    else:  # the plaintext engine: interpolated single inserts
        from repro.sql.parameters import inline_parameters

        for statement in workload.load_statements():
            target.execute(statement)
        for row in rows:
            target.execute(inline_parameters(insert, row))


def _table_footprint(table) -> tuple[int, int, int]:
    """(rows, total bytes, Add-onion bytes) of one stored table."""
    add_columns = [c for c in table.columns if c.name.endswith("_Add")]
    hom_bytes = 0
    for row in table._rows.values():
        for column in add_columns:
            hom_bytes += column.data_type.storage_size(row.get(column.name))
    return table.row_count(), table.storage_bytes(), hom_bytes


@pytest.fixture(scope="module")
def loaded_systems(small_paillier):
    workload_args = dict(_SCALE, seed=20110023)
    plain = Database()
    _load(plain, TPCCWorkload(**workload_args))
    proxies = {}
    for label, packing in (("packed", True), ("scalar", False)):
        proxy = CryptDBProxy(
            master_key=MasterKey.from_passphrase("storage-bench"),
            paillier=small_paillier,
            hom_packing=packing,
        )
        _load(proxy, TPCCWorkload(**workload_args))
        proxies[label] = proxy
    assert proxies["packed"].hom_packing is not None
    assert proxies["scalar"].hom_packing is None
    return plain, proxies


def _measure(plain, proxies) -> dict[str, dict]:
    per_table: dict[str, dict] = {}
    for name in plain.table_names():
        rows, plain_bytes, _ = _table_footprint(plain.table(name))
        entry = {
            "rows": rows,
            "plain_bytes_per_row": round(plain_bytes / rows, 1) if rows else 0.0,
        }
        for label, proxy in proxies.items():
            anon = proxy.schema.tables[name].anon_name
            enc_rows, enc_bytes, hom_bytes = _table_footprint(proxy.db.table(anon))
            assert enc_rows == rows
            entry[f"{label}_bytes_per_row"] = round(enc_bytes / rows, 1) if rows else 0.0
            entry[f"{label}_hom_bytes_per_row"] = (
                round(hom_bytes / rows, 1) if rows else 0.0
            )
            entry[f"{label}_expansion"] = (
                round(enc_bytes / plain_bytes, 2) if plain_bytes else 0.0
            )
        packed_hom = entry["packed_hom_bytes_per_row"]
        entry["hom_shrink_factor"] = (
            round(entry["scalar_hom_bytes_per_row"] / packed_hom, 2)
            if packed_hom
            else 0.0
        )
        per_table[name] = entry
    return per_table


def test_packed_hom_shrinks_ciphertext_bytes(loaded_systems):
    """Packing cuts Add-onion bytes/row by ~slots_for(n) on wide tables."""
    plain, proxies = loaded_systems
    per_table = _measure(plain, proxies)
    _RESULTS["tables"] = per_table

    slots = proxies["packed"].hom_packing.slots_for(
        proxies["packed"].paillier.public.n
    )
    _RESULTS["slots_per_ciphertext"] = slots

    print_table(
        "Storage expansion per table (bytes/row)",
        [
            dict(table=name, **{k: v for k, v in entry.items() if k != "rows"})
            for name, entry in sorted(per_table.items())
        ],
    )

    wide = per_table["wide"]
    # 10 INT columns over >=4 slots/ciphertext: at least a 4x Add-onion diet.
    assert wide["hom_shrink_factor"] >= 4.0, wide
    assert wide["packed_bytes_per_row"] < wide["scalar_bytes_per_row"]
    # Packing never helps single-numeric-column tables much, but it must
    # never *grow* any table's Add onion.
    for name, entry in per_table.items():
        assert entry["packed_hom_bytes_per_row"] <= entry["scalar_hom_bytes_per_row"], name

    # Whole-database view: packing narrows the paper's 3.76x blow-up.
    for label in ("packed", "scalar"):
        _RESULTS[f"{label}_total_expansion"] = round(
            proxies[label].db.storage_bytes() / plain.storage_bytes(), 2
        )
    assert _RESULTS["packed_total_expansion"] < _RESULTS["scalar_total_expansion"]
    record_bench("storage_expansion", _RESULTS)


def test_cache_bytes_per_row_recorded(loaded_systems):
    """Proxy cache footprint per stored row, after a mixed query burst."""
    plain, proxies = loaded_systems
    proxy = proxies["packed"]
    workload = TPCCWorkload(**dict(_SCALE, seed=20110023))
    for sql, params in workload.mixed_query_params(_CACHE_QUERIES):
        try:
            proxy.execute(sql, params)
        except Exception:
            # Stale-onion refusals are conformance-correct; storage
            # accounting only needs the cache warmed, not every answer.
            pass
    total_rows = sum(
        table.row_count() for table in map(plain.table, plain.table_names())
    )
    stats = proxy.stats.cache_stats()
    _RESULTS["cache"] = {
        "estimated_bytes": stats.estimated_bytes,
        "cache_bytes_per_row": round(stats.estimated_bytes / total_rows, 1),
        "rows": total_rows,
    }
    assert stats.estimated_bytes > 0
    print_table("Proxy cache footprint", [_RESULTS["cache"]])
    record_bench("storage_expansion", _RESULTS)

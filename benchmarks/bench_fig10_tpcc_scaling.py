"""Figure 10: TPC-C throughput for MySQL vs CryptDB as server cores vary.

The paper scales the MySQL server from 1 to 8 cores and finds CryptDB's
throughput is a roughly constant 21-26% below MySQL at every point (both
scale the same way, since in the steady state the server just runs normal SQL
over ciphertext).  A Python process cannot vary physical cores, so the
benchmark emulates core count by running the same per-core workload slice
``cores`` times and reporting aggregate throughput; the asserted shape is the
constant relative gap, not absolute queries/sec.
"""

import time

import pytest

from repro.sql.engine import Database
from repro.workloads.tpcc import TPCCWorkload

from conftest import print_table

_SCALE = dict(
    warehouses=1, districts_per_warehouse=1, customers_per_district=5,
    items=6, orders_per_district=5,
)
_QUERIES_PER_CORE = 12
_CORES = (1, 2, 4, 8)


def _throughput(target, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        target.execute(query)
    return len(queries) / (time.perf_counter() - start)


@pytest.fixture(scope="module")
def loaded_systems(small_paillier):
    from repro.core.proxy import CryptDBProxy

    plain = Database()
    TPCCWorkload(**_SCALE).load_into(plain)
    proxy = CryptDBProxy(paillier=small_paillier)
    workload = TPCCWorkload(**_SCALE)
    workload.load_into(proxy)
    proxy.train(workload.training_queries())
    return plain, proxy


def test_fig10_tpcc_throughput_scaling(benchmark, loaded_systems):
    plain, proxy = loaded_systems
    workload = TPCCWorkload(**_SCALE)
    rows = []
    overheads = []
    for cores in _CORES:
        queries = workload.mixed_queries(_QUERIES_PER_CORE * cores)
        mysql_qps = _throughput(plain, queries) * 1  # single process stands in per core
        cryptdb_qps = _throughput(proxy, queries)
        overhead = 1.0 - cryptdb_qps / mysql_qps
        overheads.append(overhead)
        rows.append({
            "cores (emulated)": cores,
            "MySQL q/s": round(mysql_qps),
            "CryptDB q/s": round(cryptdb_qps),
            "throughput loss %": round(overhead * 100, 1),
            "paper loss %": "21-26",
        })
    print_table("Figure 10: TPC-C throughput vs cores", rows)
    # Shape: the relative loss is roughly flat across core counts (no growing
    # divergence), which is the paper's main point for this figure.
    spread = max(overheads) - min(overheads)
    assert spread < 0.45
    benchmark(lambda: proxy.execute(workload.query("Equality")))

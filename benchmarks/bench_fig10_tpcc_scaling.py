"""Figure 10: TPC-C throughput for MySQL vs CryptDB as server cores vary.

The paper scales the MySQL server from 1 to 8 cores and finds CryptDB's
throughput is a roughly constant 21-26% below MySQL at every point (both
scale the same way, since in the steady state the server just runs normal SQL
over ciphertext).  A Python process cannot vary physical cores, so the
benchmark emulates core count by running the same per-core workload slice
``cores`` times and reporting aggregate throughput; the asserted shape is the
constant relative gap, not absolute queries/sec.

Both systems are driven through the DB-API layer (``repro.connect``); the
CryptDB side issues parameterized statements, so each TPC-C query type is
rewritten once and served from the proxy's plan cache afterwards.

Besides the headline q/s, the recorded JSON carries a per-scheme time
breakdown (ECC / AES / OPE / Paillier microseconds per query, measured by
timing each primitive's entry points over one pass of the mix), so the
throughput trajectory across PRs is attributable to specific primitives; and
the run cross-checks that CryptDB's decrypted SELECT results are identical
to plaintext execution.
"""

import time

import pytest

import repro
from repro.workloads.tpcc import TPCCWorkload

from conftest import BENCH_QUICK, print_table, record_bench

_SCALE = dict(
    warehouses=1, districts_per_warehouse=1, customers_per_district=5,
    items=6, orders_per_district=5,
)
_QUERIES_PER_CORE = 4 if BENCH_QUICK else 12
_CORES = (1, 2) if BENCH_QUICK else (1, 2, 4, 8)
_VERIFY_QUERIES = 24 if BENCH_QUICK else 60

#: Entry points timed for the per-scheme breakdown.  Each is a boundary the
#: rest of the system calls into (none nests inside another bucket), so the
#: accumulated wall time attributes cleanly.
def _breakdown_targets():
    from repro.crypto import join_adj
    from repro.crypto.aes import AES
    from repro.crypto.ope import OPE
    from repro.crypto.paillier import PaillierKeyPair

    return [
        ("ECC", join_adj.JoinAdj, "hash_value"),
        ("ECC", join_adj.JoinAdj, "hash_values"),
        ("ECC", join_adj, "adjust"),
        ("ECC", join_adj, "adjust_many"),
        ("AES", AES, "encrypt_block"),
        ("AES", AES, "decrypt_block"),
        ("OPE", OPE, "encrypt"),
        ("OPE", OPE, "decrypt"),
        ("Paillier", PaillierKeyPair, "encrypt"),
        ("Paillier", PaillierKeyPair, "decrypt"),
    ]


def _throughput(connection, query_params) -> float:
    cursor = connection.cursor()
    start = time.perf_counter()
    for sql, params in query_params:
        cursor.execute(sql, params)
    return len(query_params) / (time.perf_counter() - start)


def _select_results(connection, query_params) -> list[list[tuple]]:
    """Execute the mix and collect result rows of the SELECT statements."""
    cursor = connection.cursor()
    collected = []
    for sql, params in query_params:
        cursor.execute(sql, params)
        if sql.lstrip().upper().startswith("SELECT"):
            collected.append(cursor.fetchall())
    return collected


def _scheme_breakdown(connection, query_params) -> dict[str, float]:
    """Per-scheme microseconds per query over one pass of the mix."""
    totals = {"ECC": 0.0, "AES": 0.0, "OPE": 0.0, "Paillier": 0.0}
    originals = []

    def timed(bucket, func):
        def wrapper(*args, **kwargs):
            begin = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                totals[bucket] += time.perf_counter() - begin
        return wrapper

    for bucket, owner, name in _breakdown_targets():
        original = getattr(owner, name)
        originals.append((owner, name, original))
        setattr(owner, name, timed(bucket, original))
    try:
        cursor = connection.cursor()
        for sql, params in query_params:
            cursor.execute(sql, params)
    finally:
        for owner, name, original in originals:
            setattr(owner, name, original)
    count = len(query_params)
    return {scheme: round(seconds / count * 1e6, 1) for scheme, seconds in totals.items()}


@pytest.fixture(scope="module")
def loaded_systems(small_paillier):
    plain = repro.connect(encrypted=False)
    TPCCWorkload(**_SCALE).load_into(plain)
    proxy_conn = repro.connect(paillier=small_paillier)
    workload = TPCCWorkload(**_SCALE)
    workload.load_into(proxy_conn)
    proxy_conn.proxy.train(workload.training_queries())
    # The bulk load drains the HOM randomness pool the proxy filled at
    # startup; re-fill it as the paper's proxy does during idle periods
    # (§3.5.2) so the steady-state mix measures a warm pool.  The Figure 12
    # "Proxy*" ablation benchmarks the cold-pool case.
    proxy_conn.proxy.cache.precompute_hom(256 if BENCH_QUICK else 1024)
    return plain, proxy_conn


def test_fig10_tpcc_throughput_scaling(benchmark, loaded_systems):
    plain, proxy_conn = loaded_systems
    workload = TPCCWorkload(**_SCALE)
    rows = []
    overheads = []
    for cores in _CORES:
        query_params = workload.mixed_query_params(_QUERIES_PER_CORE * cores)
        mysql_qps = _throughput(plain, query_params)  # single process stands in per core
        cryptdb_qps = _throughput(proxy_conn, query_params)
        overhead = 1.0 - cryptdb_qps / mysql_qps
        overheads.append(overhead)
        rows.append({
            "cores (emulated)": cores,
            "MySQL q/s": round(mysql_qps),
            "CryptDB q/s": round(cryptdb_qps),
            "throughput loss %": round(overhead * 100, 1),
            "paper loss %": "21-26",
        })
    print_table("Figure 10: TPC-C throughput vs cores", rows)

    # Correctness cross-check: the decrypted SELECT results of the mix are
    # identical to plaintext execution (writes replay on both sides alike).
    verify_params = workload.mixed_query_params(_VERIFY_QUERIES)
    plain_results = _select_results(plain, verify_params)
    cryptdb_results = _select_results(proxy_conn, verify_params)
    assert len(plain_results) == len(cryptdb_results)
    for expected, decrypted in zip(plain_results, cryptdb_results):
        assert sorted(map(repr, decrypted)) == sorted(map(repr, expected))

    # Attribute the remaining overhead: per-scheme time over one more pass.
    breakdown = _scheme_breakdown(
        proxy_conn, workload.mixed_query_params(_QUERIES_PER_CORE * _CORES[-1])
    )
    print("Per-scheme breakdown (us/query): "
          + ", ".join(f"{scheme} {us}" for scheme, us in breakdown.items()))

    stats = proxy_conn.proxy.stats
    print(f"Plan cache: {stats.plan_cache_hits} hits / "
          f"{stats.plan_cache_misses} misses / "
          f"{stats.plan_cache_invalidations} invalidations")
    record_bench("fig10_tpcc_scaling", {
        "rows": rows,
        "overhead_spread": round(max(overheads) - min(overheads), 4),
        "scheme_breakdown_us_per_query": breakdown,
        "results_match_plaintext": True,
        "plan_cache": {
            "hits": stats.plan_cache_hits,
            "misses": stats.plan_cache_misses,
            "invalidations": stats.plan_cache_invalidations,
        },
    })
    # Shape: the relative loss is roughly flat across core counts (no growing
    # divergence), which is the paper's main point for this figure.
    spread = max(overheads) - min(overheads)
    assert spread < 0.45
    # The steady-state mix reuses one cached plan per query shape.
    assert stats.plan_cache_hits > 0
    cursor = proxy_conn.cursor()
    benchmark(lambda: cursor.execute(*workload.query_params("Equality")))

"""Figure 10: TPC-C throughput for MySQL vs CryptDB as server cores vary.

The paper scales the MySQL server from 1 to 8 cores and finds CryptDB's
throughput is a roughly constant 21-26% below MySQL at every point (both
scale the same way, since in the steady state the server just runs normal SQL
over ciphertext).  A Python process cannot vary physical cores, so the
benchmark emulates core count by running the same per-core workload slice
``cores`` times and reporting aggregate throughput; the asserted shape is the
constant relative gap, not absolute queries/sec.

Both systems are driven through the DB-API layer (``repro.connect``); the
CryptDB side issues parameterized statements, so each TPC-C query type is
rewritten once and served from the proxy's plan cache afterwards.
"""

import time

import pytest

import repro
from repro.workloads.tpcc import TPCCWorkload

from conftest import print_table, record_bench

_SCALE = dict(
    warehouses=1, districts_per_warehouse=1, customers_per_district=5,
    items=6, orders_per_district=5,
)
_QUERIES_PER_CORE = 12
_CORES = (1, 2, 4, 8)


def _throughput(connection, query_params) -> float:
    cursor = connection.cursor()
    start = time.perf_counter()
    for sql, params in query_params:
        cursor.execute(sql, params)
    return len(query_params) / (time.perf_counter() - start)


@pytest.fixture(scope="module")
def loaded_systems(small_paillier):
    plain = repro.connect(encrypted=False)
    TPCCWorkload(**_SCALE).load_into(plain)
    proxy_conn = repro.connect(paillier=small_paillier)
    workload = TPCCWorkload(**_SCALE)
    workload.load_into(proxy_conn)
    proxy_conn.proxy.train(workload.training_queries())
    return plain, proxy_conn


def test_fig10_tpcc_throughput_scaling(benchmark, loaded_systems):
    plain, proxy_conn = loaded_systems
    workload = TPCCWorkload(**_SCALE)
    rows = []
    overheads = []
    for cores in _CORES:
        query_params = workload.mixed_query_params(_QUERIES_PER_CORE * cores)
        mysql_qps = _throughput(plain, query_params)  # single process stands in per core
        cryptdb_qps = _throughput(proxy_conn, query_params)
        overhead = 1.0 - cryptdb_qps / mysql_qps
        overheads.append(overhead)
        rows.append({
            "cores (emulated)": cores,
            "MySQL q/s": round(mysql_qps),
            "CryptDB q/s": round(cryptdb_qps),
            "throughput loss %": round(overhead * 100, 1),
            "paper loss %": "21-26",
        })
    print_table("Figure 10: TPC-C throughput vs cores", rows)
    stats = proxy_conn.proxy.stats
    print(f"Plan cache: {stats.plan_cache_hits} hits / "
          f"{stats.plan_cache_misses} misses / "
          f"{stats.plan_cache_invalidations} invalidations")
    record_bench("fig10_tpcc_scaling", {
        "rows": rows,
        "overhead_spread": round(max(overheads) - min(overheads), 4),
        "plan_cache": {
            "hits": stats.plan_cache_hits,
            "misses": stats.plan_cache_misses,
            "invalidations": stats.plan_cache_invalidations,
        },
    })
    # Shape: the relative loss is roughly flat across core counts (no growing
    # divergence), which is the paper's main point for this figure.
    spread = max(overheads) - min(overheads)
    assert spread < 0.45
    # The steady-state mix reuses one cached plan per query shape.
    assert stats.plan_cache_hits > 0
    cursor = proxy_conn.cursor()
    benchmark(lambda: cursor.execute(*workload.query_params("Equality")))

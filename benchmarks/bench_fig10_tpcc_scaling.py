"""Figure 10: TPC-C throughput for MySQL vs CryptDB as cores/drivers vary.

The paper scales the MySQL server from 1 to 8 cores and finds CryptDB's
throughput a roughly constant 21-26% below MySQL at every point.  Earlier
revisions of this benchmark *emulated* core count by running the same
workload slice ``cores`` times in one process; this one drives **real OS
processes**: the plaintext and CryptDB stacks are built and loaded once,
then N independent TPC-C drivers are forked from the loaded image
(copy-on-write replica per driver -- the shared-nothing, process-per-core
deployment of a GIL-bound Python proxy), released simultaneously through a
barrier, and aggregate queries/sec is measured as total queries over the
slowest driver's wall time.

The recorded JSON therefore carries a *measured* scaling slope plus
``available_cpus``: on a single-core container both systems are flat by
physics (N drivers timeslice one core), so the scaling assertions -- and the
slope guard in ``check_bench_regression.py`` -- only demand real speedup
when the hardware can provide it.

A second section measures the crypto-worker-pool offload (``workers=2``)
against serial execution on the *batch* kernels (bulk executemany + bulk
SELECT decryption), which is where ``repro.parallel`` engages inside a
single proxy process.

Both systems are driven through the DB-API layer (``repro.connect``); the
per-scheme time breakdown (ECC / AES / OPE / Paillier microseconds per
query) and the decrypted-vs-plaintext identity cross-check are retained
from the earlier revisions.
"""

import multiprocessing
import os
import time

import pytest

import repro
from repro.parallel import ParallelConfig
from repro.shard import ShardedBackend
from repro.workloads.tpcc import TPCCWorkload

from conftest import BENCH_QUICK, print_table, record_bench

_SCALE = dict(
    warehouses=1, districts_per_warehouse=1, customers_per_district=5,
    items=6, orders_per_district=5,
)
_QUERIES_PER_DRIVER = 24 if BENCH_QUICK else 60
_WORKERS = (1, 2) if BENCH_QUICK else (1, 2, 4, 8)
_VERIFY_QUERIES = 24 if BENCH_QUICK else 60
_POOL_ROWS = 120 if BENCH_QUICK else 360

try:
    _AVAILABLE_CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    _AVAILABLE_CPUS = os.cpu_count() or 1

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
#: Per-phase ceiling before a dead driver is treated as a failure.
_DRIVER_TIMEOUT = 300


#: Entry points timed for the per-scheme breakdown.  Each is a boundary the
#: rest of the system calls into (none nests inside another bucket), so the
#: accumulated wall time attributes cleanly.
def _breakdown_targets():
    from repro.crypto import join_adj
    from repro.crypto.aes import AES
    from repro.crypto.ope import OPE
    from repro.crypto.paillier import PaillierKeyPair

    return [
        ("ECC", join_adj.JoinAdj, "hash_value"),
        ("ECC", join_adj.JoinAdj, "hash_values"),
        ("ECC", join_adj, "adjust"),
        ("ECC", join_adj, "adjust_many"),
        ("AES", AES, "encrypt_block"),
        ("AES", AES, "decrypt_block"),
        ("OPE", OPE, "encrypt"),
        ("OPE", OPE, "decrypt"),
        ("Paillier", PaillierKeyPair, "encrypt"),
        ("Paillier", PaillierKeyPair, "decrypt"),
    ]


def _select_results(connection, query_params) -> list[list[tuple]]:
    """Execute the mix and collect result rows of the SELECT statements."""
    cursor = connection.cursor()
    collected = []
    for sql, params in query_params:
        cursor.execute(sql, params)
        if sql.lstrip().upper().startswith("SELECT"):
            collected.append(cursor.fetchall())
    return collected


def _scheme_breakdown(connection, query_params) -> dict[str, float]:
    """Per-scheme microseconds per query over one pass of the mix."""
    totals = {"ECC": 0.0, "AES": 0.0, "OPE": 0.0, "Paillier": 0.0}
    originals = []

    def timed(bucket, func):
        def wrapper(*args, **kwargs):
            begin = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                totals[bucket] += time.perf_counter() - begin
        return wrapper

    for bucket, owner, name in _breakdown_targets():
        original = getattr(owner, name)
        originals.append((owner, name, original))
        setattr(owner, name, timed(bucket, original))
    try:
        cursor = connection.cursor()
        for sql, params in query_params:
            cursor.execute(sql, params)
    finally:
        for owner, name, original in originals:
            setattr(owner, name, original)
    count = len(query_params)
    return {scheme: round(seconds / count * 1e6, 1) for scheme, seconds in totals.items()}


# ---------------------------------------------------------------------------
# real-process drivers
# ---------------------------------------------------------------------------
def _driver_body(connection, query_params, barrier, queue) -> None:
    """One forked TPC-C driver: wait at the barrier, run the mix, report."""
    cursor = connection.cursor()
    barrier.wait()
    start = time.perf_counter()
    for sql, params in query_params:
        cursor.execute(sql, params)
    queue.put(time.perf_counter() - start)


def _measure_scaling(connection, n_drivers: int) -> float:
    """Aggregate q/s of ``n_drivers`` forked drivers over one connection image.

    Every driver gets its own seeded query stream; all are released by one
    barrier and the aggregate rate is total queries over the slowest
    driver's elapsed time (the usual closed-loop throughput definition).
    """
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(n_drivers + 1)
    queue = context.Queue()
    streams = [
        TPCCWorkload(**_SCALE, seed=1000 + index).mixed_query_params(_QUERIES_PER_DRIVER)
        for index in range(n_drivers)
    ]
    drivers = [
        context.Process(
            target=_driver_body, args=(connection, stream, barrier, queue), daemon=True
        )
        for stream in streams
    ]
    try:
        for driver in drivers:
            driver.start()
        # Timeouts turn a dead driver (exception, OOM kill) into a test
        # failure instead of an indefinite hang at the barrier or queue.
        barrier.wait(timeout=_DRIVER_TIMEOUT)
        elapsed = [queue.get(timeout=_DRIVER_TIMEOUT) for _ in drivers]
    finally:
        for driver in drivers:
            driver.join(timeout=10)
            if driver.is_alive():
                driver.terminate()
    return (n_drivers * _QUERIES_PER_DRIVER) / max(elapsed)


def _measure_pool_offload(small_paillier) -> dict:
    """Batch kernels, serial vs a 2-process crypto pool, on one proxy each."""
    rows = [
        (i, f"customer-{i % 40}", f"district-{i % 12}", 100 + (i % 50))
        for i in range(_POOL_ROWS)
    ]
    timings = {}
    for label, workers in (("serial_s", 0), ("pool_s", 2)):
        # chunk_threshold stays at its auto default: on a single-core box the
        # pool never engages synchronously (IPC would lose to the serial
        # kernels) and both runs measure the same code, ratio ~1.0.
        conn = repro.connect(
            paillier=small_paillier,
            parallelism=ParallelConfig(workers=workers),
            hom_precompute=0,
        )
        cursor = conn.cursor()
        cursor.execute(
            "CREATE TABLE bulk (id INT, name VARCHAR(30), dist VARCHAR(20), amt INT)"
        )
        start = time.perf_counter()
        cursor.executemany(
            "INSERT INTO bulk (id, name, dist, amt) VALUES (?, ?, ?, ?)", rows
        )
        cursor.execute("SELECT id, name, dist, amt FROM bulk")
        assert len(cursor.fetchall()) == _POOL_ROWS
        timings[label] = time.perf_counter() - start
        if workers:
            timings["pool_jobs"] = conn.proxy.stats.cache_stats().parallel_jobs
        conn.close()
    timings["ratio_serial_over_pool"] = round(timings["serial_s"] / timings["pool_s"], 3)
    timings["serial_s"] = round(timings["serial_s"], 4)
    timings["pool_s"] = round(timings["pool_s"], 4)
    return timings


_SHARDS = 3


@pytest.fixture(scope="module")
def loaded_systems(small_paillier):
    plain = repro.connect(encrypted=False)
    TPCCWorkload(**_SCALE).load_into(plain)
    proxy_conn = repro.connect(paillier=small_paillier)
    workload = TPCCWorkload(**_SCALE)
    workload.load_into(proxy_conn)
    proxy_conn.proxy.train(workload.training_queries())
    # The bulk load drains the HOM randomness pool the proxy filled at
    # startup; re-fill it as the paper's proxy does during idle periods
    # (§3.5.2) so the steady-state mix measures a warm pool.  The Figure 12
    # "Proxy*" ablation benchmarks the cold-pool case.
    proxy_conn.proxy.cache.precompute_hom(256 if BENCH_QUICK else 1024)
    # The shards x workers section: the same stack over a 3-shard scatter-
    # gather backend.  ``threads=False`` keeps the forked-driver image free
    # of thread pools (a ThreadPoolExecutor does not survive fork); on a
    # GIL-bound pure-Python engine the thread scatter buys nothing anyway,
    # and bench_shard_scaling.py measures it separately.
    sharded_conn = repro.connect(
        paillier=small_paillier,
        backend=ShardedBackend(shards=_SHARDS, threads=False),
    )
    sharded_workload = TPCCWorkload(**_SCALE)
    sharded_workload.load_into(sharded_conn)
    sharded_conn.proxy.train(sharded_workload.training_queries())
    sharded_conn.proxy.cache.precompute_hom(256 if BENCH_QUICK else 1024)
    return plain, proxy_conn, sharded_conn


def test_fig10_tpcc_throughput_scaling(benchmark, loaded_systems, small_paillier):
    if not _FORK_AVAILABLE:  # pragma: no cover - Linux containers always fork
        pytest.skip("real-process scaling drivers require the fork start method")
    plain, proxy_conn, sharded_conn = loaded_systems
    workload = TPCCWorkload(**_SCALE)

    # Correctness cross-check first: the decrypted SELECT results of the mix
    # are identical to plaintext execution (writes replay on both sides
    # alike); the forked drivers then inherit this post-verify image.
    verify_params = workload.mixed_query_params(_VERIFY_QUERIES)
    plain_results = _select_results(plain, verify_params)
    cryptdb_results = _select_results(proxy_conn, verify_params)
    assert len(plain_results) == len(cryptdb_results)
    for expected, decrypted in zip(plain_results, cryptdb_results):
        assert sorted(map(repr, decrypted)) == sorted(map(repr, expected))

    rows = []
    overheads = []
    mysql_curve = []
    cryptdb_curve = []
    for n_drivers in _WORKERS:
        mysql_qps = _measure_scaling(plain, n_drivers)
        cryptdb_qps = _measure_scaling(proxy_conn, n_drivers)
        mysql_curve.append(mysql_qps)
        cryptdb_curve.append(cryptdb_qps)
        overhead = 1.0 - cryptdb_qps / mysql_qps
        overheads.append(overhead)
        rows.append({
            "workers": n_drivers,
            "MySQL q/s": round(mysql_qps),
            "CryptDB q/s": round(cryptdb_qps),
            "throughput loss %": round(overhead * 100, 1),
            "paper loss %": "21-26",
        })
    print_table(
        f"Figure 10: TPC-C throughput vs driver processes "
        f"({_AVAILABLE_CPUS} CPU(s) available)",
        rows,
    )

    # Attribute the remaining overhead: per-scheme time over one more pass.
    breakdown = _scheme_breakdown(
        proxy_conn, workload.mixed_query_params(_QUERIES_PER_DRIVER)
    )
    print("Per-scheme breakdown (us/query): "
          + ", ".join(f"{scheme} {us}" for scheme, us in breakdown.items()))

    pool_offload = _measure_pool_offload(small_paillier)
    print(f"Crypto-pool offload (batch kernels, {_POOL_ROWS} rows): "
          f"serial {pool_offload['serial_s']}s vs 2-worker pool "
          f"{pool_offload['pool_s']}s "
          f"(ratio {pool_offload['ratio_serial_over_pool']}x, "
          f"{pool_offload['pool_jobs']} jobs)")

    stats = proxy_conn.proxy.stats
    print(f"Plan cache: {stats.plan_cache_hits} hits / "
          f"{stats.plan_cache_misses} misses / "
          f"{stats.plan_cache_invalidations} invalidations")

    # Shards x workers: the 3-shard scatter-gather stack under the same
    # forked drivers.  Correctness first -- the decrypted answers of the mix
    # equal a freshly loaded plaintext replica's (writes replay once on
    # each side) -- then the driver sweep.
    shadow = repro.connect(encrypted=False)
    TPCCWorkload(**_SCALE).load_into(shadow)
    shadow_results = _select_results(shadow, verify_params)
    sharded_results = _select_results(sharded_conn, verify_params)
    shadow.close()
    assert len(shadow_results) == len(sharded_results)
    for expected, decrypted in zip(shadow_results, sharded_results):
        assert sorted(map(repr, decrypted)) == sorted(map(repr, expected))

    sharded_rows = []
    sharded_curve = []
    for n_drivers in _WORKERS:
        sharded_qps = _measure_scaling(sharded_conn, n_drivers)
        sharded_curve.append(sharded_qps)
        sharded_rows.append({
            "workers": n_drivers,
            "shards": _SHARDS,
            "sharded q/s": round(sharded_qps),
        })
    print_table(
        f"Figure 10 extension: {_SHARDS}-shard CryptDB vs driver processes",
        sharded_rows,
    )
    shard_stats = sharded_conn.proxy.stats.shard_stats()
    sharded_slope = sharded_curve[-1] / sharded_curve[0]
    # Same non-collapse bar as the single-backend curve: N drivers over one
    # core cannot speed up, but the scatter layer must not fall apart.
    assert sharded_slope >= (0.5 if _AVAILABLE_CPUS < 2 else 0.9), (
        f"sharded driver sweep collapsed: {sharded_curve}"
    )

    slope = cryptdb_curve[-1] / cryptdb_curve[0]
    record_bench("fig10_tpcc_scaling", {
        "rows": rows,
        "available_cpus": _AVAILABLE_CPUS,
        "driver_model": (
            "forked OS driver processes, one copy-on-write CryptDB stack "
            "replica per driver, barrier-released; no emulation"
        ),
        "scaling": {
            "max_workers": _WORKERS[-1],
            "cryptdb_slope_max_vs_1": round(slope, 3),
            "mysql_slope_max_vs_1": round(mysql_curve[-1] / mysql_curve[0], 3),
            "monotonic_nondecreasing": all(
                later >= 0.97 * earlier
                for earlier, later in zip(cryptdb_curve, cryptdb_curve[1:])
            ),
        },
        "sharded_scaling": {
            "shards": _SHARDS,
            "rows": sharded_rows,
            "sharded_slope_max_vs_1": round(sharded_slope, 3),
            "merge_counters": {
                key: value
                for key, value in shard_stats.items()
                if key != "rows_per_shard"
            },
            "rows_per_shard": shard_stats["rows_per_shard"],
            "results_match_plaintext": True,
        },
        "overhead_spread": round(max(overheads) - min(overheads), 4),
        "scheme_breakdown_us_per_query": breakdown,
        "pool_offload": pool_offload,
        "results_match_plaintext": True,
        "plan_cache": {
            "hits": stats.plan_cache_hits,
            "misses": stats.plan_cache_misses,
            "invalidations": stats.plan_cache_invalidations,
        },
    })
    # Shape: the relative loss stays roughly flat across driver counts (both
    # systems scale the same way), which is the paper's point for fig 10.
    spread = max(overheads) - min(overheads)
    assert spread < 0.45
    # Scaling: demand real speedup only where the hardware can provide it.
    # A single-core container timeslices all drivers over one CPU, so the
    # honest requirement there is merely that scale-out does not collapse;
    # quick mode's tiny sample (2 drivers x 24 queries) gets a loose sanity
    # floor here, with the calibrated thresholds enforced by
    # check_bench_regression.py over the recorded JSON.
    if _AVAILABLE_CPUS >= 2:
        floor = 0.9 if BENCH_QUICK else 1.2
        assert slope >= floor, (
            f"{_WORKERS[-1]} drivers only reached {slope:.2f}x the 1-driver "
            f"rate on {_AVAILABLE_CPUS} CPUs"
        )
    else:
        assert slope >= 0.5
    # The steady-state mix reuses one cached plan per query shape.
    assert stats.plan_cache_hits > 0
    cursor = proxy_conn.cursor()
    benchmark(lambda: cursor.execute(*workload.query_params("Equality")))
